// Baseline/interference trace matching.
//
// The paper labels training data by running the target workload once alone
// ("base") and once with background interference, then matching the *same*
// operations between the two large trace logs — an offline, time-consuming
// step on real systems.  Because our workloads are deterministic per
// (workload, seed), the same op is identified exactly by (rank, op_index),
// and the matcher verifies the op type and size line up before pairing.
#pragma once

#include <cstdint>
#include <vector>

#include "qif/trace/op_record.hpp"

namespace qif::trace {

struct MatchedOp {
  OpRecord base;
  OpRecord interference;
};

struct MatchStats {
  std::size_t matched = 0;
  std::size_t unmatched_base = 0;     ///< ops only present in the baseline run
  std::size_t unmatched_interf = 0;   ///< ops only present in the noisy run
  std::size_t mismatched = 0;         ///< paired by index but type/size differ
};

class TraceMatcher {
 public:
  /// Pairs ops of `job` between the two logs by (rank, op_index).
  /// Interference runs are typically truncated at a horizon, so trailing
  /// baseline ops may go unmatched; that is expected and counted.
  static std::vector<MatchedOp> match(const TraceLog& base_log, const TraceLog& interf_log,
                                      std::int32_t job, MatchStats* stats = nullptr);
};

}  // namespace qif::trace
