// Golden determinism tests for fault-injected campaigns.
//
// Three contracts, in order of importance:
//  1. An *empty* fault plan leaves the campaign byte-identical to the
//     pre-fault-injection golden CSV committed under tests/data/, at any
//     job count — adding the fault layer must not move a single healthy
//     byte.
//  2. A *non-empty* plan is deterministic: the same seed + plan produce a
//     byte-identical CSV sequentially and on 4 workers.
//  3. A degraded-OST campaign measures visibly worse degradation than its
//     healthy twin, because baselines always stay healthy.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "qif/core/campaign.hpp"
#include "qif/exec/parallel_runner.hpp"
#include "qif/monitor/export.hpp"
#include "qif/pfs/faults.hpp"

namespace qif::core {
namespace {

/// The exact campaign the committed golden was generated from (on the
/// pre-fault-layer tree).  Touch nothing here without regenerating
/// tests/data/campaign_prepr_golden.csv.
CampaignConfig golden_config() {
  CampaignConfig cc;
  cc.target_workload = "ior-easy-write";
  cc.target_nodes = 2;
  cc.target_procs_per_node = 2;
  cc.target_scale = 1.0;
  cc.cluster = testbed_cluster_config(31);
  cc.horizon = 120 * sim::kSecond;
  cc.cases = {{"", 0, 1.0, 7},
              {"ior-easy-read", 3, 1.0, 7},
              {"ior-easy-read", 6, 1.0, 9},
              {"mdt-hard-write", 3, 1.0, 8}};
  return cc;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string campaign_csv(const CampaignResult& result) {
  std::ostringstream os;
  monitor::write_dataset_csv(os, result.dataset);
  return os.str();
}

TEST(CampaignFaults, EmptyPlanMatchesPreFaultGoldenByteExact) {
  const std::string golden =
      read_file(std::string(QIF_TEST_DATA_DIR) + "/campaign_prepr_golden.csv");
  ASSERT_GT(golden.size(), 1000u);

  const CampaignConfig cc = golden_config();
  ASSERT_TRUE(cc.faults.empty());
  const std::string sequential = campaign_csv(run_campaign(cc));
  EXPECT_EQ(sequential, golden)
      << "healthy campaign output drifted from the pre-fault-layer golden";

  const exec::ParallelCampaignRunner runner(cc, 4);
  EXPECT_EQ(campaign_csv(runner.run()), golden)
      << "parallel (4-worker) healthy campaign drifted from the golden";
}

TEST(CampaignFaults, FaultedCampaignIsByteIdenticalAcrossJobCounts) {
  CampaignConfig cc = golden_config();
  cc.faults = pfs::faults::parse_fault_plan(
      "slow:ost=0,start=2,dur=40,factor=6;stall:ost=1,start=10,dur=8");
  const CampaignResult sequential = run_campaign(cc);
  EXPECT_EQ(sequential.dataset.dim(), monitor::MetricSchema::kPerServerDimFaults);
  ASSERT_FALSE(sequential.dataset.empty());

  const exec::ParallelCampaignRunner runner(cc, 4);
  const std::string seq_csv = campaign_csv(sequential);
  EXPECT_EQ(seq_csv, campaign_csv(runner.run()));

  // And the faults actually changed the data.
  const std::string golden =
      read_file(std::string(QIF_TEST_DATA_DIR) + "/campaign_prepr_golden.csv");
  EXPECT_NE(seq_csv, golden);
}

TEST(CampaignFaults, FaultedMitigatedCampaignIsByteIdenticalAcrossJobCounts) {
  // Faults and mitigation stacked: the controllers react to fault-driven
  // latency through the same deterministic signal path, so the combined
  // campaign must still not depend on the worker partition.
  CampaignConfig cc = golden_config();
  cc.faults = pfs::faults::parse_fault_plan(
      "slow:ost=0,start=2,dur=40,factor=6;stall:ost=1,start=10,dur=8");
  cc.mitigation = ctrl::parse_mitigation("token");
  const CampaignResult sequential = run_campaign(cc);
  ASSERT_FALSE(sequential.dataset.empty());
  const exec::ParallelCampaignRunner runner(cc, 4);
  EXPECT_EQ(campaign_csv(sequential), campaign_csv(runner.run()));
}

TEST(CampaignFaults, DegradedOstCampaignShowsHigherDegradationThanHealthyTwin) {
  CampaignConfig cc;
  cc.target_workload = "ior-easy-write";
  cc.target_nodes = 1;
  cc.target_procs_per_node = 2;
  cc.target_scale = 1.0;
  cc.cluster = testbed_cluster_config(13);
  cc.horizon = 120 * sim::kSecond;
  cc.cases = {{"", 0, 1.0, 3}};  // quiet case: any degradation is the fault's

  Campaign healthy(cc);
  (void)healthy.run();
  ASSERT_EQ(healthy.outcomes().size(), 1u);
  ASSERT_TRUE(healthy.outcomes()[0].ok());
  const double healthy_mean = healthy.outcomes()[0].mean_degradation;

  CampaignConfig degraded_cc = cc;
  for (pfs::OstId ost = 0; ost < 6; ++ost) {
    degraded_cc.faults.slow_disks.push_back({ost, 0, 120 * sim::kSecond, 8.0});
  }
  Campaign degraded(degraded_cc);
  (void)degraded.run();
  ASSERT_EQ(degraded.outcomes().size(), 1u);
  ASSERT_TRUE(degraded.outcomes()[0].ok());
  const double degraded_mean = degraded.outcomes()[0].mean_degradation;

  // The healthy quiet case sits near 1.0; the slow-disk twin, measured
  // against the same healthy baseline, must be visibly degraded.
  EXPECT_LT(healthy_mean, 1.5);
  EXPECT_GT(degraded_mean, 2.0);
  EXPECT_GT(degraded_mean, healthy_mean + 1.0);
}

}  // namespace
}  // namespace qif::core
