// InferenceService: batched-vs-sync bit identity, batch-composition
// determinism, adaptive batch policy, hot-swap atomicity under load.
//
// The central contract: a request's reply (class, probabilities,
// per-server scores) is byte-identical no matter which batch it rode in —
// batching is a pure throughput optimization, never a numerics change.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "qif/serve/service.hpp"
#include "qif/sim/rng.hpp"

namespace qif::serve {
namespace {

constexpr int kD = 5;        // per-server feature width
constexpr int kS = 3;        // servers
constexpr std::size_t kFeat = kD * kS;

std::shared_ptr<const ServingModel> make_model(std::uint64_t version, std::uint64_t seed) {
  auto m = std::make_shared<ServingModel>();
  m->kind = ServingModel::Kind::kKernel;
  ml::KernelNetConfig cfg;
  cfg.per_server_dim = kD;
  cfg.n_servers = kS;
  cfg.n_classes = 2;
  cfg.kernel_hidden = {8, 4};
  cfg.head_hidden = {6};
  cfg.seed = seed;
  m->kernel = ml::KernelNet(cfg);
  m->stdz = ml::Standardizer::from_moments(std::vector<double>(kD, 0.0),
                                           std::vector<double>(kD, 1.0));
  m->n_classes = 2;
  m->version = version;
  return m;
}

std::vector<std::vector<double>> make_features(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::vector<double>> rows(n, std::vector<double>(kFeat));
  for (auto& row : rows) {
    for (auto& v : row) v = rng.uniform(-2.0, 2.0);
  }
  return rows;
}

/// Copyable reply snapshot (Request itself holds an atomic).
struct Reply {
  int predicted_class = -1;
  std::vector<double> probabilities;
  std::vector<double> server_scores;
};

Reply snapshot(const Request& r) {
  return {r.predicted_class, r.probabilities, r.server_scores};
}

/// Sync reference: the same request features through a one-row batch.
Reply predict_sync(const ServingModel& model, const std::vector<double>& features) {
  Request r;
  r.features = features.data();
  r.n_features = features.size();
  Request* rp = &r;
  PredictScratch scratch;
  predict_batch(model, &rp, 1, scratch);
  return snapshot(r);
}

void expect_same_reply(const Reply& got, const Reply& want) {
  EXPECT_EQ(got.predicted_class, want.predicted_class);
  ASSERT_EQ(got.probabilities.size(), want.probabilities.size());
  ASSERT_EQ(got.server_scores.size(), want.server_scores.size());
  EXPECT_EQ(std::memcmp(got.probabilities.data(), want.probabilities.data(),
                        got.probabilities.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(got.server_scores.data(), want.server_scores.data(),
                        got.server_scores.size() * sizeof(double)),
            0);
}

TEST(InferenceService, RejectsNullModelAndZeroBatch) {
  EXPECT_THROW(InferenceService(nullptr, ServiceConfig{}), std::invalid_argument);
  ServiceConfig cfg;
  cfg.max_batch = 0;
  EXPECT_THROW(InferenceService(make_model(1, 3), cfg), std::invalid_argument);
}

TEST(InferenceService, BatchedRepliesAreBitIdenticalToSync) {
  const auto model = make_model(1, 11);
  const auto features = make_features(13, 21);
  ServiceConfig cfg;
  cfg.max_batch = 4;  // 13 requests -> batches of 4, 4, 4, 1
  InferenceService service(model, cfg);

  std::deque<Request> reqs(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    reqs[i].features = features[i].data();
    reqs[i].n_features = kFeat;
    ASSERT_TRUE(service.try_submit(&reqs[i]));
  }
  std::size_t served = 0;
  while (std::size_t n = service.step()) served += n;
  ASSERT_EQ(served, features.size());

  for (std::size_t i = 0; i < features.size(); ++i) {
    ASSERT_TRUE(reqs[i].ready());
    EXPECT_EQ(reqs[i].model_version, 1u);
    expect_same_reply(snapshot(reqs[i]), predict_sync(*model, features[i]));
  }
}

TEST(InferenceService, RepliesIndependentOfArrivalInterleaving) {
  // The same 12 requests served under two different submission orders and
  // two different batch partitions must produce byte-identical replies.
  const auto model = make_model(1, 5);
  const auto features = make_features(12, 77);

  auto serve_with = [&](const std::vector<std::size_t>& order, std::size_t step_rows) {
    ServiceConfig cfg;
    cfg.max_batch = 8;
    InferenceService service(model, cfg);
    std::deque<Request> reqs(features.size());
    for (const std::size_t i : order) {
      reqs[i].features = features[i].data();
      reqs[i].n_features = kFeat;
      EXPECT_TRUE(service.try_submit(&reqs[i]));
    }
    while (service.step(step_rows) > 0) {
    }
    std::vector<Reply> out;
    for (auto& r : reqs) {
      EXPECT_TRUE(r.ready());
      out.push_back(snapshot(r));
    }
    return out;
  };

  std::vector<std::size_t> fifo(features.size());
  for (std::size_t i = 0; i < fifo.size(); ++i) fifo[i] = i;
  const std::vector<std::size_t> shuffled = {7, 2, 11, 0, 9, 4, 1, 10, 3, 8, 6, 5};

  const auto a = serve_with(fifo, 5);      // batches of 5,5,2
  const auto b = serve_with(shuffled, 3);  // batches of 3, different composition
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_same_reply(a[i], b[i]);
}

TEST(InferenceService, WidthMismatchThrowsAndCompletesNothing) {
  const auto model = make_model(1, 9);
  InferenceService service(model, ServiceConfig{});
  std::vector<double> bad(kFeat + 1, 0.5);
  Request r;
  r.features = bad.data();
  r.n_features = bad.size();
  ASSERT_TRUE(service.try_submit(&r));
  EXPECT_THROW(service.step(), std::invalid_argument);
  EXPECT_FALSE(r.ready()) << "a rejected batch must not complete requests";
}

TEST(InferenceService, StepHonorsRowLimitAndEmptyRing) {
  const auto model = make_model(1, 13);
  ServiceConfig cfg;
  cfg.max_batch = 32;
  InferenceService service(model, cfg);
  EXPECT_EQ(service.step(), 0u);
  const auto features = make_features(5, 33);
  std::deque<Request> reqs(5);
  for (std::size_t i = 0; i < 5; ++i) {
    reqs[i].features = features[i].data();
    reqs[i].n_features = kFeat;
    ASSERT_TRUE(service.try_submit(&reqs[i]));
  }
  EXPECT_EQ(service.step(2), 2u);  // explicit row cap
  EXPECT_EQ(service.step(), 3u);   // remainder in one sub-max_batch batch
  EXPECT_EQ(service.step(), 0u);
  for (auto& r : reqs) EXPECT_TRUE(r.ready());
  EXPECT_EQ(service.stats().batches.load(), 2u);
  EXPECT_EQ(service.stats().requests.load(), 5u);
}

TEST(InferenceService, TrySubmitRefusesWhenRingFull) {
  const auto model = make_model(1, 17);
  ServiceConfig cfg;
  cfg.ring_capacity = 2;
  InferenceService service(model, cfg);
  const auto features = make_features(3, 41);
  std::deque<Request> reqs(3);
  for (std::size_t i = 0; i < 3; ++i) {
    reqs[i].features = features[i].data();
    reqs[i].n_features = kFeat;
  }
  EXPECT_TRUE(service.try_submit(&reqs[0]));
  EXPECT_TRUE(service.try_submit(&reqs[1]));
  EXPECT_FALSE(service.try_submit(&reqs[2]));
  EXPECT_EQ(service.stats().rejected.load(), 1u);
}

TEST(InferenceService, BatcherThreadServesAndCountsBatchTriggers) {
  const auto model = make_model(1, 19);
  ServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  InferenceService service(model, cfg);
  service.start();
  const auto features = make_features(35, 55);
  std::deque<Request> reqs(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    reqs[i].features = features[i].data();
    reqs[i].n_features = kFeat;
    service.submit(&reqs[i]);
  }
  for (auto& r : reqs) r.wait();
  service.stop();
  EXPECT_EQ(service.stats().requests.load(), features.size());
  EXPECT_GE(service.stats().batches.load(),
            (features.size() + cfg.max_batch - 1) / cfg.max_batch);
  EXPECT_EQ(service.stats().full_batches.load() + service.stats().timeout_batches.load(),
            service.stats().batches.load());
  for (std::size_t i = 0; i < features.size(); ++i) {
    expect_same_reply(snapshot(reqs[i]), predict_sync(*model, features[i]));
  }
}

TEST(InferenceService, StopDrainsEverythingAlreadySubmitted) {
  const auto model = make_model(1, 23);
  InferenceService service(model, ServiceConfig{});
  service.start();
  const auto features = make_features(10, 67);
  std::deque<Request> reqs(10);
  for (std::size_t i = 0; i < 10; ++i) {
    reqs[i].features = features[i].data();
    reqs[i].n_features = kFeat;
    service.submit(&reqs[i]);
  }
  service.stop();  // must serve the backlog before joining
  for (auto& r : reqs) EXPECT_TRUE(r.ready());
  service.stop();  // idempotent
}

TEST(InferenceService, HotSwapIsNeverTornAndNeverMixesVersionsInABatch) {
  // Producers hammer the service while the main thread flips between two
  // bundles.  Afterwards: every request carries version 1 or 2, every
  // batch is single-version, and every reply is byte-identical to the
  // sync path on the model that allegedly served it — a torn or
  // mixed-version swap would break one of these.
  const auto v1 = make_model(1, 101);
  const auto v2 = make_model(2, 202);
  ServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 50;
  InferenceService service(v1, cfg);
  service.start();

  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kPerProducer = 300;
  const auto features = make_features(kProducers * kPerProducer, 303);
  std::deque<Request> reqs(features.size());
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t idx = p * kPerProducer + i;
        reqs[idx].features = features[idx].data();
        reqs[idx].n_features = kFeat;
        service.submit(&reqs[idx]);
      }
    });
  }
  for (int swap = 0; swap < 20; ++swap) {
    service.swap_model(swap % 2 == 0 ? v2 : v1);
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  for (auto& r : reqs) r.wait();
  service.stop();

  std::map<std::uint64_t, std::uint64_t> batch_version;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Request& r = reqs[i];
    ASSERT_TRUE(r.model_version == 1 || r.model_version == 2) << r.model_version;
    const auto [it, inserted] = batch_version.emplace(r.batch_seq, r.model_version);
    if (!inserted) {
      EXPECT_EQ(it->second, r.model_version)
          << "batch " << r.batch_seq << " mixed model versions";
    }
    const ServingModel& served_by = r.model_version == 1 ? *v1 : *v2;
    expect_same_reply(snapshot(r), predict_sync(served_by, features[i]));
  }
}

}  // namespace
}  // namespace qif::serve
