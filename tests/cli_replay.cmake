# Drives the qif CLI through the trace-replay closed loop and the .qwp
# workload-IR surface:
#   dump-trace W  ->  run trace:F   reproduces W's op stream (fingerprint)
#   workloads export W -> lint -> run qwp:F  reproduces W as well
# both in the classic engine and on parallel event lanes.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run outvar)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

function(expect_fail)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "command unexpectedly succeeded: ${ARGN}\n${out}")
  endif()
endfunction()

# Extracts the `solo trace fp: HHHH` line `qif run` prints.
function(fingerprint outvar text)
  string(REGEX MATCH "solo trace fp: ([0-9a-f]+)" m "${text}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "no fingerprint line in output:\n${text}")
  endif()
  set(${outvar} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

# --- Closed loop, classic engine -------------------------------------------
run(base_out ${QIF_CLI} run enzo --scale 0.5)
fingerprint(base_fp "${base_out}")
run(_ ${QIF_CLI} dump-trace enzo --scale 0.5 --out enzo.dxt)
run(replay_out ${QIF_CLI} run trace:enzo.dxt)
fingerprint(replay_fp "${replay_out}")
if(NOT replay_fp STREQUAL base_fp)
  message(FATAL_ERROR "replay fingerprint ${replay_fp} != original ${base_fp}")
endif()

# --- Closed loop on event lanes --------------------------------------------
# Lane runs are bit-identical for every lane count N >= 1 (but not to the
# classic engine), so the dump and both replays all use the laned engine on
# a 4-OSS topology.
run(lane_out ${QIF_CLI} run enzo --scale 0.5 --topology 8x4x2 --lanes 1)
fingerprint(lane_fp "${lane_out}")
run(_ ${QIF_CLI} dump-trace enzo --scale 0.5 --topology 8x4x2 --lanes 1 --out enzo_lane.dxt)
run(lane1_out ${QIF_CLI} run trace:enzo_lane.dxt --topology 8x4x2 --lanes 1)
fingerprint(lane1_fp "${lane1_out}")
run(lane4_out ${QIF_CLI} run trace:enzo_lane.dxt --topology 8x4x2 --lanes 4)
fingerprint(lane4_fp "${lane4_out}")
if(NOT lane1_fp STREQUAL lane_fp)
  message(FATAL_ERROR "lanes 1 replay fingerprint ${lane1_fp} != original ${lane_fp}")
endif()
if(NOT lane4_fp STREQUAL lane_fp)
  message(FATAL_ERROR "lanes 4 replay fingerprint ${lane4_fp} != original ${lane_fp}")
endif()

# --- .qwp export / lint / run ----------------------------------------------
run(_ ${QIF_CLI} workloads export enzo --ranks 4 --out enzo.qwp)
run(lint_out ${QIF_CLI} workloads lint enzo.qwp)
if(NOT lint_out MATCHES "ok \\(workload 'enzo', 4 rank\\(s\\)")
  message(FATAL_ERROR "unexpected lint output: ${lint_out}")
endif()
run(full_out ${QIF_CLI} run enzo)
fingerprint(full_fp "${full_out}")
run(qwp_out ${QIF_CLI} run qwp:enzo.qwp)
fingerprint(qwp_fp "${qwp_out}")
if(NOT qwp_fp STREQUAL full_fp)
  message(FATAL_ERROR "qwp replay fingerprint ${qwp_fp} != original ${full_fp}")
endif()

# --- Parameterized generators and name rejection ---------------------------
run(_ ${QIF_CLI} run ckpt:64m,1g,120)
run(_ ${QIF_CLI} run ior-easy-write --noise trace:enzo.dxt --instances 2 --scale 0.5)
expect_fail(${QIF_CLI} run nosuch-workload)
expect_fail(${QIF_CLI} workloads export nosuch-workload)
expect_fail(${QIF_CLI} workloads lint enzo.dxt)
