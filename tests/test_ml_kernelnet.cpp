// Tests for the kernel-based network: shapes, weight sharing semantics,
// gradient check through the whole architecture, learning, serialization.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "qif/ml/kernel_net.hpp"

namespace qif::ml {
namespace {

KernelNetConfig tiny_config() {
  KernelNetConfig cfg;
  cfg.per_server_dim = 4;
  cfg.n_servers = 3;
  cfg.n_classes = 2;
  cfg.kernel_hidden = {6};
  cfg.head_hidden = {5};
  cfg.seed = 7;
  return cfg;
}

TEST(KernelNet, OutputShape) {
  KernelNet net(tiny_config());
  Matrix x(5, 12);
  const Matrix logits = net.forward_inference(x);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 2u);
}

TEST(KernelNet, SharedKernelScoresDependOnlyOnServerVector) {
  // Weight sharing: putting the same vector in any server slot yields the
  // same kernel score for that slot.
  KernelNet net(tiny_config());
  std::vector<double> probe = {1.0, -0.5, 2.0, 0.25};
  for (int slot = 0; slot < 3; ++slot) {
    std::vector<double> features(12, 0.0);
    std::copy(probe.begin(), probe.end(), features.begin() + slot * 4);
    const auto scores = net.server_scores(features);
    ASSERT_EQ(scores.size(), 3u);
    // All-zero slots share one score; the probe slot's score is the same
    // number regardless of which slot holds it.
    std::vector<double> zeros(12, 0.0);
    const auto base = net.server_scores(zeros);
    for (int other = 0; other < 3; ++other) {
      if (other == slot) continue;
      EXPECT_NEAR(scores[other], base[other], 1e-12);
    }
    static double probe_score = scores[static_cast<std::size_t>(slot)];
    EXPECT_NEAR(scores[static_cast<std::size_t>(slot)], probe_score, 1e-12);
  }
}

TEST(KernelNet, GradientCheckEndToEnd) {
  KernelNet net(tiny_config());
  sim::Rng rng(3);
  Matrix x(3, 12);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  const std::vector<int> y = {0, 1, 1};

  // dLoss/dInput is not exposed; check dLoss/dW indirectly by verifying a
  // single Adam-free SGD step in the gradient direction reduces the loss.
  const Matrix logits = net.forward(x);
  auto [loss0, d] = SoftmaxXent::loss_and_grad(logits, y, {});
  net.backward(d);
  AdamParams small;
  small.lr = 1e-3;
  net.step(small, 1);
  const auto [loss1, d1] =
      SoftmaxXent::loss_and_grad(net.forward_inference(x), y, {});
  EXPECT_LT(loss1, loss0);
}

TEST(KernelNet, LearnsSyntheticInterferenceRule) {
  // Synthetic rule: positive iff any server's first feature (its "queue
  // depth") exceeds 0 — a sum the kernel + head must learn.
  KernelNetConfig cfg = tiny_config();
  KernelNet net(cfg);
  sim::Rng rng(11);
  const std::size_t n = 256;
  Matrix x(n, 12);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    bool positive = false;
    for (int srv = 0; srv < 3; ++srv) {
      const bool hot = rng.chance(0.25);
      x.at(i, srv * 4) = hot ? rng.uniform(1.0, 3.0) : rng.uniform(-3.0, -1.0);
      for (int f = 1; f < 4; ++f) x.at(i, srv * 4 + f) = rng.normal(0, 1);
      positive = positive || hot;
    }
    y[i] = positive ? 1 : 0;
  }
  std::int64_t t = 0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    const Matrix logits = net.forward(x);
    auto [loss, d] = SoftmaxXent::loss_and_grad(logits, y, {});
    net.backward(d);
    net.step(AdamParams{}, ++t);
  }
  const auto pred = net.predict(x);
  int correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred[i] == y[i]) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(n * 0.92));
}

TEST(KernelNet, SaveLoadPreservesPredictions) {
  KernelNet net(tiny_config());
  sim::Rng rng(5);
  Matrix x(4, 12);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  const Matrix before = net.forward_inference(x);
  std::stringstream ss;
  net.save(ss);
  KernelNet loaded;
  loaded.load(ss);
  EXPECT_EQ(loaded.config().n_servers, 3);
  EXPECT_EQ(loaded.config().kernel_hidden, std::vector<int>{6});
  const Matrix after = loaded.forward_inference(x);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after.data()[i], before.data()[i], 1e-9);
  }
}

TEST(KernelNet, LoadThrowsOnCorruptOrTruncatedStream) {
  // Regression: load() used to trust the stream, so a bad header or a
  // truncated file produced a silently garbage network.
  KernelNet net(tiny_config());
  std::stringstream ss;
  net.save(ss);
  const std::string full = ss.str();

  KernelNet loaded;
  std::stringstream bad_magic("notakernelnet 4 3 2\n");
  EXPECT_THROW(loaded.load(bad_magic), std::runtime_error);
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(loaded.load(truncated), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW(loaded.load(empty), std::runtime_error);
}

TEST(KernelNet, PredictIsArgmaxOfLogits) {
  KernelNet net(tiny_config());
  sim::Rng rng(6);
  Matrix x(10, 12);
  for (auto& v : x.data()) v = rng.normal(0, 2);
  const Matrix logits = net.forward_inference(x);
  const auto pred = net.predict(x);
  for (std::size_t i = 0; i < 10; ++i) {
    const int expect = logits.at(i, 0) >= logits.at(i, 1) ? 0 : 1;
    EXPECT_EQ(pred[i], expect);
  }
}

TEST(KernelNet, ConfigurableBins) {
  // "the amount of classification bins is configurable".
  KernelNetConfig cfg = tiny_config();
  cfg.n_classes = 3;
  KernelNet net(cfg);
  Matrix x(2, 12);
  EXPECT_EQ(net.forward_inference(x).cols(), 3u);
}

TEST(KernelNet, SnapshotRestoreIsBitExact) {
  KernelNet net(tiny_config());
  sim::Rng rng(9);
  Matrix x(4, 12);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  const std::vector<int> y = {0, 1, 0, 1};

  // Move off the init point, snapshot, keep training, then restore.
  auto train_steps = [&](KernelNet& n, int steps, std::int64_t& t) {
    for (int s = 0; s < steps; ++s) {
      auto [loss, d] = SoftmaxXent::loss_and_grad(n.forward(x), y, {});
      n.backward(d);
      n.step({}, ++t);
    }
  };
  std::int64_t t = 0;
  train_steps(net, 5, t);
  const std::vector<double> snap = net.snapshot();
  EXPECT_EQ(snap.size(), net.param_count());
  const Matrix at_snapshot = net.forward_inference(x);
  train_steps(net, 7, t);
  net.restore(snap);
  const Matrix restored = net.forward_inference(x);
  ASSERT_EQ(restored.size(), at_snapshot.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    // Bit-exact: binary snapshots never round-trip through text.
    EXPECT_EQ(restored.data()[i], at_snapshot.data()[i]);
  }
}

TEST(KernelNet, SnapshotAgreesWithTextSaveLoad) {
  KernelNet net(tiny_config());
  sim::Rng rng(10);
  Matrix x(3, 12);
  for (auto& v : x.data()) v = rng.normal(0, 1);

  // Same weights via the text round trip and via snapshot/restore into a
  // fresh same-architecture net: predictions must agree to text precision.
  std::stringstream ss;
  net.save(ss);
  KernelNet via_text;
  via_text.load(ss);
  KernelNet via_snap(tiny_config());
  via_snap.restore(net.snapshot());
  const Matrix a = via_text.forward_inference(x);
  const Matrix b = via_snap.forward_inference(x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-9);
  }
  // The snapshot path itself is exact.
  const Matrix direct = net.forward_inference(x);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.data()[i], direct.data()[i]);
  }
}

TEST(KernelNet, RestoreRejectsWrongSizeSnapshot) {
  KernelNet net(tiny_config());
  std::vector<double> snap = net.snapshot();
  snap.pop_back();
  EXPECT_THROW(net.restore(snap), std::invalid_argument);
  snap.resize(net.param_count() + 3, 0.0);
  EXPECT_THROW(net.restore(snap), std::invalid_argument);
  EXPECT_THROW(net.restore({}), std::invalid_argument);
}

TEST(KernelNet, SnapshotIntoReusesBuffer) {
  KernelNet net(tiny_config());
  std::vector<double> buf;
  net.snapshot_into(buf);
  EXPECT_EQ(buf.size(), net.param_count());
  const double* p = buf.data();
  net.snapshot_into(buf);  // steady state: no reallocation
  EXPECT_EQ(buf.data(), p);
  EXPECT_EQ(buf, net.snapshot());
}

TEST(KernelNet, DeterministicInitFromSeed) {
  KernelNet a(tiny_config()), b(tiny_config());
  Matrix x(1, 12);
  x.data()[3] = 1.0;
  EXPECT_DOUBLE_EQ(a.forward_inference(x).at(0, 0), b.forward_inference(x).at(0, 0));
}

TEST(KernelNet, ForwardBatchMatchesForwardInferenceBitForBit) {
  // The serving-layer contract: batched logits (and per-server scores) are
  // bit-identical to forward_inference per row, and to a one-row
  // forward_batch of the same row — batch composition never changes a
  // prediction.
  KernelNet net(tiny_config());
  sim::Rng rng(17);
  for (const std::size_t batch : {1u, 2u, 5u, 8u, 13u}) {
    Matrix x(batch, 12);
    for (auto& v : x.data()) v = rng.normal(0, 1);
    KernelNet::Scratch scratch;
    const MatView logits = net.forward_batch(x, scratch);
    ASSERT_EQ(logits.rows, batch);
    ASSERT_EQ(logits.cols, 2u);
    const Matrix want = net.forward_inference(x);
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t j = 0; j < 2u; ++j) {
        ASSERT_EQ(logits.at(i, j), want.at(i, j)) << "batch=" << batch << " row " << i;
      }
      // One-row batch of the same row: identical logits and scores.
      KernelNet::Scratch one_scratch;
      const MatView one = net.forward_batch(MatView(x.row(i), 1, 12), one_scratch);
      for (std::size_t j = 0; j < 2u; ++j) {
        ASSERT_EQ(one.at(0, j), logits.at(i, j)) << "batch=" << batch << " row " << i;
      }
      for (std::size_t s = 0; s < 3u; ++s) {
        ASSERT_EQ(one_scratch.scores.data()[s], scratch.scores.data()[i * 3 + s])
            << "batch=" << batch << " row " << i << " server " << s;
      }
    }
  }
}

}  // namespace
}  // namespace qif::ml
