// Tests for the RPC fabric: request/response sequencing, port fan-in,
// and contention behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "qif/pfs/network.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {
namespace {

NetworkParams fast_params() {
  NetworkParams p;
  p.bytes_per_second = 1e9;
  p.latency = 100 * sim::kMicrosecond;
  return p;
}

TEST(NetworkFabric, RpcRunsServeBetweenTransfers) {
  sim::Simulation s;
  NetworkFabric net(s, fast_params(), 2, 2);
  std::vector<int> order;
  net.rpc(
      0, 1, 0, 0,
      [&](std::function<void()> done) {
        order.push_back(1);  // serve
        s.schedule_after(sim::kMillisecond, std::move(done));
      },
      [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(NetworkFabric, SmallRpcLatencyIsBounded) {
  sim::Simulation s;
  NetworkFabric net(s, fast_params(), 1, 1);
  sim::SimTime done = 0;
  net.rpc(0, 0, 256, 256, [](std::function<void()> d) { d(); },
          [&] { done = s.now(); });
  s.run_all();
  // Two propagation hops + tiny serializations: well under a millisecond.
  EXPECT_GT(done, 2 * fast_params().latency);
  EXPECT_LT(sim::to_millis(done), 1.0);
}

TEST(NetworkFabric, LargePayloadPaysSerialization) {
  sim::Simulation s;
  NetworkFabric net(s, fast_params(), 1, 1);
  sim::SimTime small_done = 0, big_done = 0;
  {
    sim::Simulation s2;
    NetworkFabric net2(s2, fast_params(), 1, 1);
    net2.rpc(0, 0, 0, 256, [](std::function<void()> d) { d(); },
             [&] { small_done = s2.now(); });
    s2.run_all();
  }
  net.rpc(0, 0, 0, 100 << 20, [](std::function<void()> d) { d(); },
          [&] { big_done = s.now(); });
  s.run_all();
  // 100 MiB at 1 GB/s ~ 105 ms of response serialization.
  EXPECT_GT(sim::to_millis(big_done) - sim::to_millis(small_done), 90.0);
}

TEST(NetworkFabric, ClientEgressSerializesRanksOnOneNode) {
  sim::Simulation s;
  NetworkFabric net(s, fast_params(), 1, 1);
  std::vector<sim::SimTime> done;
  for (int i = 0; i < 2; ++i) {
    net.rpc(0, 0, 50 << 20, 0, [](std::function<void()> d) { d(); },
            [&] { done.push_back(s.now()); });
  }
  s.run_all();
  ASSERT_EQ(done.size(), 2u);
  // The second request's 50 MiB must wait for the first on the shared
  // node NIC: clearly serialized, not overlapped.
  EXPECT_GT(sim::to_millis(done[1]), sim::to_millis(done[0]) + 40.0);
}

TEST(NetworkFabric, ServerIngressSharesFairlyAcrossNodes) {
  sim::Simulation s;
  NetworkFabric net(s, fast_params(), 2, 1);
  std::vector<sim::SimTime> done(2);
  for (int node = 0; node < 2; ++node) {
    net.rpc(node, 0, 100 << 20, 0, [](std::function<void()> d) { d(); },
            [&, node] { done[static_cast<std::size_t>(node)] = s.now(); });
  }
  s.run_all();
  // Two equal flows from different nodes converge on one ingress: both
  // finish around 2x the solo time, and close to each other.
  const double a = sim::to_millis(done[0]);
  const double b = sim::to_millis(done[1]);
  EXPECT_NEAR(a, b, 30.0);
  EXPECT_GT(std::max(a, b), 180.0);  // ~2 x 105 ms
}

TEST(NetworkFabric, FlowGaugesTrackActivity) {
  sim::Simulation s;
  NetworkFabric net(s, fast_params(), 1, 2);
  net.rpc(0, 1, 40 << 20, 0, [](std::function<void()> d) { d(); }, nullptr);
  // Nothing in flight on port 0; port 1 becomes active once the request
  // clears the client NIC (~42 ms serialization) and enters the ingress.
  s.run_until(45 * sim::kMillisecond);
  EXPECT_EQ(net.server_ingress_flows(0), 0u);
  EXPECT_EQ(net.server_ingress_flows(1), 1u);
  s.run_all();
  EXPECT_EQ(net.server_ingress_flows(1), 0u);
}

TEST(NetworkFabric, ManyConcurrentRpcsAllComplete) {
  sim::Simulation s;
  NetworkFabric net(s, fast_params(), 4, 3);
  int done = 0;
  for (int i = 0; i < 200; ++i) {
    net.rpc(i % 4, i % 3, 4096, 4096,
            [&s](std::function<void()> d) { s.schedule_after(10, std::move(d)); },
            [&] { ++done; });
  }
  s.run_all();
  EXPECT_EQ(done, 200);
}

}  // namespace
}  // namespace qif::pfs
