// Golden and determinism tests for mitigated campaigns.
//
// Mirrors test_campaign_faults' contracts for the mitigation layer:
//  1. A campaign with mitigation *off* stays byte-identical to the
//     pre-mitigation golden CSV — wiring qif::ctrl through the scenario
//     runner must not move a single unmitigated byte.
//  2. A mitigated campaign is deterministic: byte-identical CSV
//     sequentially and on 4 workers (the controllers' state never leaks
//     across the worker partition).
//  3. run_mitigation_study shares baselines between the twins and the
//     mitigated side measures less degradation and a lower victim p99 than
//     its unmitigated twin.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "qif/core/campaign.hpp"
#include "qif/exec/parallel_runner.hpp"
#include "qif/monitor/export.hpp"

namespace qif::core {
namespace {

/// The exact campaign the committed golden was generated from (see
/// test_campaign_faults.cpp; regenerate the golden before touching it).
CampaignConfig golden_config() {
  CampaignConfig cc;
  cc.target_workload = "ior-easy-write";
  cc.target_nodes = 2;
  cc.target_procs_per_node = 2;
  cc.target_scale = 1.0;
  cc.cluster = testbed_cluster_config(31);
  cc.horizon = 120 * sim::kSecond;
  cc.cases = {{"", 0, 1.0, 7},
              {"ior-easy-read", 3, 1.0, 7},
              {"ior-easy-read", 6, 1.0, 9},
              {"mdt-hard-write", 3, 1.0, 8}};
  return cc;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string campaign_csv(const CampaignResult& result) {
  std::ostringstream os;
  monitor::write_dataset_csv(os, result.dataset);
  return os.str();
}

TEST(CampaignMitigate, OffCampaignMatchesPreMitigationGoldenByteExact) {
  const std::string golden =
      read_file(std::string(QIF_TEST_DATA_DIR) + "/campaign_prepr_golden.csv");
  ASSERT_GT(golden.size(), 1000u);
  const CampaignConfig cc = golden_config();
  ASSERT_TRUE(cc.mitigation.empty());
  EXPECT_EQ(campaign_csv(run_campaign(cc)), golden)
      << "mitigation-off campaign drifted from the pre-mitigation golden";
}

TEST(CampaignMitigate, MitigatedCampaignIsByteIdenticalAcrossJobCounts) {
  CampaignConfig cc = golden_config();
  cc.mitigation = ctrl::parse_mitigation("token");
  const CampaignResult sequential = run_campaign(cc);
  ASSERT_FALSE(sequential.dataset.empty());
  const std::string seq_csv = campaign_csv(sequential);

  const exec::ParallelCampaignRunner runner(cc, 4);
  EXPECT_EQ(seq_csv, campaign_csv(runner.run()));

  // And the controllers actually moved the data: the mitigated CSV differs
  // from the unmitigated golden, and the noisy cases saw throttling.
  const std::string golden =
      read_file(std::string(QIF_TEST_DATA_DIR) + "/campaign_prepr_golden.csv");
  EXPECT_NE(seq_csv, golden);
  std::int64_t waits = 0;
  for (const CaseOutcome& oc : sequential.outcomes) waits += oc.throttle_waits;
  EXPECT_GT(waits, 0);
}

TEST(CampaignMitigate, StudyRequiresAPolicy) {
  EXPECT_THROW((void)run_mitigation_study(golden_config()), std::invalid_argument);
}

TEST(CampaignMitigate, StudyShowsOnBeatsOffOnDegradationAndVictimTail) {
  CampaignConfig cc = golden_config();
  // The heavier contended case is where mitigation earns its keep; the
  // quiet case would just dilute the comparison.
  cc.cases = {{"ior-easy-read", 6, 1.0, 9}};
  cc.mitigation = ctrl::parse_mitigation("token");
  const MitigationStudy study = run_mitigation_study(cc);

  ASSERT_EQ(study.off.outcomes.size(), 1u);
  ASSERT_EQ(study.on.outcomes.size(), 1u);
  const CaseOutcome& off = study.off.outcomes[0];
  const CaseOutcome& on = study.on.outcomes[0];
  ASSERT_TRUE(off.ok()) << off.error;
  ASSERT_TRUE(on.ok()) << on.error;

  // The twins ran the same case over the same shared baseline.
  EXPECT_EQ(off.spec.seed, on.spec.seed);
  EXPECT_EQ(off.throttle_waits, 0);
  EXPECT_GT(on.throttle_waits, 0);
  EXPECT_LT(on.mean_degradation, off.mean_degradation);
  EXPECT_LT(on.victim_p99_ms, off.victim_p99_ms);
}

}  // namespace
}  // namespace qif::core
