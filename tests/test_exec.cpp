// Tests for the qif::exec subsystem: the fixed-size thread pool and the
// parallel campaign runner's bit-identical-to-sequential guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "qif/core/campaign.hpp"
#include "qif/core/scenario.hpp"
#include "qif/exec/parallel_runner.hpp"
#include "qif/exec/thread_pool.hpp"

namespace qif {
namespace {

TEST(ThreadPool, ClampsWorkerCountToAtLeastOne) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  exec::ThreadPool pool4(4);
  EXPECT_EQ(pool4.size(), 4);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  exec::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each_index(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ForEachIndexRethrowsLowestIndexError) {
  exec::ThreadPool pool(4);
  // Indices 5 and 11 throw; the lowest one must win deterministically.
  try {
    pool.for_each_index(16, [](std::size_t i) {
      if (i == 11) throw std::runtime_error("error at 11");
      if (i == 5) throw std::runtime_error("error at 5");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "error at 5");
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 32);
}

core::CampaignConfig small_campaign(std::uint64_t cluster_seed) {
  core::CampaignConfig cc;
  cc.target_workload = "ior-easy-write";
  cc.target_nodes = 1;
  cc.target_procs_per_node = 2;
  cc.target_scale = 0.5;
  cc.cluster = core::testbed_cluster_config(cluster_seed);
  cc.cases.push_back({"", 0, 1.0, 1});
  cc.cases.push_back({"ior-easy-read", 12, 1.0, 2});
  cc.cases.push_back({"mdt-easy-write", 6, 1.0, 1});  // shares seed 1's baseline
  cc.cases.push_back({"", 0, 1.0, 2});                // shares seed 2's baseline
  return cc;
}

void expect_identical(const core::CampaignResult& a, const core::CampaignResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const core::CaseOutcome& oa = a.outcomes[i];
    const core::CaseOutcome& ob = b.outcomes[i];
    EXPECT_EQ(oa.spec.interference_workload, ob.spec.interference_workload);
    EXPECT_EQ(oa.spec.seed, ob.spec.seed);
    EXPECT_EQ(oa.matched_ops, ob.matched_ops);
    EXPECT_EQ(oa.windows, ob.windows);
    EXPECT_EQ(oa.sampled_windows, ob.sampled_windows);
    EXPECT_EQ(oa.mean_degradation, ob.mean_degradation);  // bit-identical
    EXPECT_EQ(oa.target_finished, ob.target_finished);
    EXPECT_EQ(oa.error, ob.error);
  }
  EXPECT_EQ(a.dataset.n_servers(), b.dataset.n_servers());
  EXPECT_EQ(a.dataset.dim(), b.dataset.dim());
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (std::size_t i = 0; i < a.dataset.size(); ++i) {
    EXPECT_EQ(a.dataset.window_index(i), b.dataset.window_index(i));
    EXPECT_EQ(a.dataset.label(i), b.dataset.label(i));
    EXPECT_EQ(a.dataset.degradation(i), b.dataset.degradation(i));
    for (std::size_t j = 0; j < a.dataset.width(); ++j) {
      EXPECT_EQ(a.dataset.row(i)[j], b.dataset.row(i)[j])
          << "sample " << i << " feature " << j;
    }
  }
}

TEST(ParallelCampaignRunner, BitIdenticalToSequentialAtAnyJobCount) {
  const core::CampaignConfig cc = small_campaign(21);
  const core::CampaignResult sequential = core::run_campaign(cc);
  const core::CampaignResult one_job = exec::run_campaign_parallel(cc, 1);
  const core::CampaignResult four_jobs = exec::run_campaign_parallel(cc, 4);
  ASSERT_FALSE(sequential.dataset.empty());
  expect_identical(sequential, one_job);
  expect_identical(sequential, four_jobs);
}

TEST(ParallelCampaignRunner, ThrowingCaseIsReportedPerCaseNotFatal) {
  core::CampaignConfig cc = small_campaign(22);
  // An unknown interference workload makes run_scenario throw for exactly
  // this case; the campaign must still complete every other case.
  cc.cases[1].interference_workload = "no-such-workload";
  const core::CampaignResult result = exec::run_campaign_parallel(cc, 4);
  ASSERT_EQ(result.outcomes.size(), 4u);
  EXPECT_FALSE(result.outcomes[1].ok());
  EXPECT_NE(result.outcomes[1].error.find("no-such-workload"), std::string::npos);
  EXPECT_EQ(result.outcomes[1].windows, 0u);
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    EXPECT_TRUE(result.outcomes[i].ok()) << "case " << i;
    EXPECT_GT(result.outcomes[i].windows, 0u) << "case " << i;
  }
  EXPECT_FALSE(result.dataset.empty());

  // The sequential driver reports the same failure the same way.
  const core::CampaignResult sequential = core::run_campaign(cc);
  expect_identical(sequential, result);
}

TEST(ParallelCampaignRunner, FailedBaselinePoisonsOnlyItsCases) {
  core::CampaignConfig cc = small_campaign(23);
  cc.target_workload = "no-such-target";
  const core::CampaignResult result = exec::run_campaign_parallel(cc, 2);
  ASSERT_EQ(result.outcomes.size(), 4u);
  for (const auto& o : result.outcomes) {
    EXPECT_FALSE(o.ok());
    EXPECT_NE(o.error.find("baseline failed"), std::string::npos);
  }
  EXPECT_TRUE(result.dataset.empty());
}

TEST(ParallelCampaignRunner, CampaignRunnerHookDispatchesByJobs) {
  const core::CampaignConfig cc = small_campaign(24);
  const core::CampaignRunFn seq = exec::campaign_runner(1);
  const core::CampaignRunFn par = exec::campaign_runner(3);
  expect_identical(seq(cc), par(cc));
}

}  // namespace
}  // namespace qif
