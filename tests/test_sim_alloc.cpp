// Heap-allocation accounting for the event-engine hot path.
//
// The acceptance bar for the engine rebuild: zero heap allocations per
// scheduled event in steady state, for closures of every shape the pfs
// layer schedules today (up to ~104 bytes of captures, including
// std::function members moved through).  This binary replaces global
// operator new/delete with counting versions; each test warms the engine
// up (so slabs, heaps, and reusable buffers reach their steady-state
// capacity) and then asserts that a measured window performs no
// allocations at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>

#include "qif/sim/fair_link.hpp"
#include "qif/sim/lanes.hpp"
#include "qif/sim/pipe.hpp"
#include "qif/sim/simulation.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

struct AllocWindow {
  std::uint64_t start = g_allocs.load(std::memory_order_relaxed);
  [[nodiscard]] std::uint64_t count() const {
    return g_allocs.load(std::memory_order_relaxed) - start;
  }
};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace qif::sim {
namespace {

// Representative of the largest closure the pfs layer schedules today
// (MdtServer::dispatch: this + Task{kind, string, ids, callback}): ~104
// bytes including a moved std::function member.
struct BigCapture {
  void* self = nullptr;
  std::int64_t a = 0, b = 0, c = 0, d = 0;
  std::int64_t payload[4] = {0, 0, 0, 0};
  std::function<void()> cb;
};

TEST(EngineAllocations, SteadyStateScheduleAndFireIsAllocationFree) {
  Simulation s;
  int fired = 0;
  std::function<void()> cb = [&fired] { ++fired; };
  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      BigCapture big;
      big.cb = cb;
      s.schedule_after(1 + i, [big = std::move(big)] {
        if (big.cb) big.cb();
      });
      s.schedule_after(2 + i, [&fired] { ++fired; });
    }
    s.run_all();
  };
  burst(256);  // warm-up: grows the slot slab and the heap once
  const AllocWindow w;
  burst(256);
  EXPECT_EQ(w.count(), 0u) << "event scheduling/firing allocated in steady state";
  EXPECT_GT(fired, 0);
}

TEST(EngineAllocations, CancelChurnIsAllocationFree) {
  Simulation s;
  int fired = 0;
  auto churn = [&](int n) {
    EventId pending = kInvalidEvent;
    for (int i = 0; i < n; ++i) {
      s.cancel(pending);
      pending = s.schedule_after(1000, [&fired] { ++fired; });
    }
    s.run_all();
  };
  churn(512);
  const AllocWindow w;
  churn(512);
  EXPECT_EQ(w.count(), 0u) << "cancel/reschedule churn allocated in steady state";
}

TEST(EngineAllocations, FairLinkTransfersAreAllocationFreeInSteadyState) {
  Simulation s;
  FairLink link(s, 1e9);
  int done = 0;
  auto round = [&](int n) {
    for (int i = 0; i < n; ++i) {
      link.transfer(1 << 16, [&done] { ++done; });
    }
    s.run_all();
  };
  round(64);  // warm-up: flows_ vector, done_ buffer, engine slab
  const AllocWindow w;
  round(64);
  EXPECT_EQ(w.count(), 0u) << "FairLink transfer/completion allocated in steady state";
  EXPECT_EQ(done, 128);
}

TEST(EngineAllocations, LaneWindowLoopIsAllocationFreeInSteadyState) {
  // The lane hot loop: post into the per-(src,dst) outboxes, drain them via
  // inject, run both window stages, mint entity-context origins.  After one
  // warm-up (outbox capacity, slot slabs, per-context counters) a steady
  // round must not allocate.
  LaneGroup lanes(2, /*lookahead=*/100);
  int fired = 0;
  auto round = [&](int n) {
    for (int i = 0; i < n; ++i) {
      for (int src = 0; src < 2; ++src) {
        Simulation& s = lanes.lane(src);
        const SimTime t = s.now();
        lanes.post(src, 1 - src, EventKey{t + 100, t, s.consume_origin(), 0},
                   /*ctx=*/static_cast<std::uint32_t>(1 - src), [&lanes, src, &fired] {
                     ++fired;
                     // Delivered hops schedule local follow-ups, like a
                     // served RPC does.
                     lanes.lane(1 - src).schedule_after(10, [&fired] { ++fired; });
                   });
      }
      lanes.run_until(lanes.now() + 1000);
    }
  };
  round(64);  // warm-up
  const AllocWindow w;
  round(64);
  EXPECT_EQ(w.count(), 0u) << "lane window loop allocated in steady state";
  EXPECT_EQ(fired, 2 * 2 * 128);
}

TEST(EngineAllocations, PipeDeliveriesAreAllocationFreeInSteadyState) {
  Simulation s;
  Pipe pipe(s, 1e9, 100);
  int done = 0;
  auto round = [&](int n) {
    for (int i = 0; i < n; ++i) {
      pipe.send(4096, [&done] { ++done; });
    }
    s.run_all();
  };
  round(64);  // warm-up: message queue, delivery pool, engine slab
  const AllocWindow w;
  round(64);
  EXPECT_EQ(w.count(), 0u) << "Pipe send/delivery allocated in steady state";
  EXPECT_EQ(done, 128);
}

}  // namespace
}  // namespace qif::sim
