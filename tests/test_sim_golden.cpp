// Golden-trace regression tests for the discrete-event engine.
//
// The engine rebuild (InlineTask + pooled heap + FairLink churn reduction)
// must be *behaviour-preserving*: every simulation has to stay
// event-for-event identical, because labelled datasets are produced by
// matching op records between baseline and interference runs.  These tests
// pin a small cluster scenario's complete OpRecord stream — order and every
// field — to a hash captured from the pre-rebuild engine.  If any engine
// change reorders same-tick events or perturbs a single timestamp, the
// hash moves and this test fails.
#include <gtest/gtest.h>

#include <cstdint>

#include "qif/core/scenario.hpp"

namespace qif::core {
namespace {

// FNV-1a over the full record stream in completion (log) order.
std::uint64_t trace_hash(const trace::TraceLog& log) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& r : log.records()) {
    mix(r.job);
    mix(r.rank);
    mix(r.op_index);
    mix(static_cast<std::int64_t>(r.type));
    mix(r.file);
    mix(r.offset);
    mix(r.bytes);
    mix(r.start);
    mix(r.end);
    for (const auto t : r.targets) mix(t);
  }
  return h;
}

ScenarioConfig golden_config(const std::string& target, const std::string& background) {
  ScenarioConfig cfg;
  cfg.cluster = testbed_cluster_config(31);
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = 5;
  cfg.target.scale = 0.25;
  cfg.horizon = 300 * sim::kSecond;
  if (!background.empty()) {
    InterferenceSpec bg;
    bg.workload = background;
    bg.nodes = {2, 3};
    bg.instances = 2;
    bg.scale = 0.25;
    bg.seed = 99;
    cfg.interference = bg;
  }
  return cfg;
}

struct GoldenCase {
  const char* target;
  const char* background;  // empty = baseline run
  std::uint64_t expected_hash;
  std::uint64_t expected_events;
};

// Hashes captured from the pre-rebuild engine (std::priority_queue +
// std::function + tombstone cancellation) at seed commit 7478e39.  They
// cover the data path (FairLink + disk + writeback), the metadata path
// (MDT queue + commit batching), and interference (contended FairLinks,
// heavy cancel/reschedule churn).
class GoldenTraceTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenTraceTest, OpRecordStreamIsByteIdenticalToPreRebuildEngine) {
  const GoldenCase& c = GetParam();
  const ScenarioResult res = run_scenario(golden_config(c.target, c.background));
  ASSERT_TRUE(res.target_finished);
  EXPECT_EQ(res.events_executed, c.expected_events)
      << c.target << " vs " << c.background;
  EXPECT_EQ(trace_hash(res.trace), c.expected_hash)
      << c.target << " vs " << c.background << ": trace diverged; hash=0x"
      << std::hex << trace_hash(res.trace) << " events=" << std::dec
      << res.events_executed;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, GoldenTraceTest,
    ::testing::Values(
        GoldenCase{"ior-easy-write", "", 0x15fbd55224be2ea4ull, 1325ull},
        GoldenCase{"ior-easy-write", "ior-easy-read", 0x0fbd8de0a534e1caull, 4338ull},
        GoldenCase{"ior-hard-read", "ior-easy-write", 0xfbc1910e718a9ff3ull, 11926ull},
        GoldenCase{"mdt-hard-write", "mdt-easy-write", 0x9baf5909afb0dfe2ull, 20291ull}),
    [](const auto& info) {
      std::string n = info.param.target;
      if (info.param.background[0] != '\0') {
        n += std::string("_vs_") + info.param.background;
      }
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace qif::core
