// Tests for the standard dataset campaigns: shapes, class-balance
// character, richness scaling, and CSV interop.
#include <gtest/gtest.h>

#include <sstream>

#include "qif/core/datasets.hpp"
#include "qif/monitor/export.hpp"

namespace qif::core {
namespace {

DatasetOptions cheap() {
  DatasetOptions o;
  o.richness = 0.5;
  return o;
}

TEST(Datasets, Io500SkewsPositive) {
  const monitor::Dataset ds = build_io500_dataset(cheap());
  ASSERT_GT(ds.size(), 100u);
  EXPECT_EQ(ds.n_servers(), 7);
  EXPECT_EQ(ds.dim(), monitor::MetricSchema::kPerServerDim);
  const auto hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), 2u);
  // Like the paper's 8,647 vs 2,991: interference windows dominate.
  EXPECT_GT(hist[1], hist[0]);
}

TEST(Datasets, DlioSkewsNegative) {
  const monitor::Dataset ds = build_dlio_dataset(cheap());
  ASSERT_GT(ds.size(), 50u);
  const auto hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), 2u);
  // Like the paper's 3,702 vs 14,724: quiet windows dominate.
  EXPECT_GT(hist[0], hist[1]);
}

TEST(Datasets, MulticlassThresholdsProduceThreeBins) {
  DatasetOptions o = cheap();
  o.bin_thresholds = {2.0, 5.0};
  const monitor::Dataset ds = build_io500_dataset(o);
  const auto hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_GT(hist[0], 0u);
  EXPECT_GT(hist[1], 0u);
  EXPECT_GT(hist[2], 0u);
}

TEST(Datasets, OpenPmdYieldsFewSamples) {
  // The Figure 5 handicap must be structural, not accidental.
  const monitor::Dataset openpmd = build_app_dataset("openpmd", cheap());
  const monitor::Dataset enzo = build_app_dataset("enzo", cheap());
  EXPECT_LT(openpmd.size() * 4, enzo.size());
}

TEST(Datasets, RichnessScalesWindowCount) {
  DatasetOptions lean = cheap();
  DatasetOptions rich = cheap();
  rich.richness = 1.5;
  const auto a = build_app_dataset("amrex", lean);
  const auto b = build_app_dataset("amrex", rich);
  EXPECT_GT(b.size(), a.size());
}

TEST(Datasets, DeterministicPerSeed) {
  const auto a = build_app_dataset("amrex", cheap());
  const auto b = build_app_dataset("amrex", cheap());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_DOUBLE_EQ(a.degradation(i), b.degradation(i));
  }
}

TEST(Datasets, SurvivesCsvRoundTrip) {
  const monitor::Dataset ds = build_app_dataset("amrex", cheap());
  std::stringstream ss;
  monitor::write_dataset_csv(ss, ds);
  const monitor::Dataset loaded = monitor::read_dataset_csv(ss);
  ASSERT_EQ(loaded.size(), ds.size());
  EXPECT_EQ(loaded.n_servers(), ds.n_servers());
  EXPECT_EQ(loaded.dim(), ds.dim());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded.label(i), ds.label(i));
  }
}

TEST(Datasets, CsvAndQdsAgreeOnCampaignData) {
  // The interop (CSV) and native (.qds) paths must describe the same
  // dataset: every column equal, CSV features equal after the text
  // round-trip's %.17g formatting (which is exact for doubles).
  const monitor::Dataset ds = build_app_dataset("amrex", cheap());
  std::stringstream csv, qds;
  monitor::write_dataset_csv(csv, ds);
  monitor::write_dataset_qds(qds, ds);
  const monitor::Dataset from_csv = monitor::read_dataset_csv(csv);
  const monitor::Dataset from_qds = monitor::read_dataset_qds(qds);
  ASSERT_EQ(from_csv.size(), ds.size());
  ASSERT_EQ(from_qds.size(), ds.size());
  ASSERT_EQ(from_csv.width(), from_qds.width());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(from_csv.window_index(i), from_qds.window_index(i));
    EXPECT_EQ(from_csv.label(i), from_qds.label(i));
    EXPECT_DOUBLE_EQ(from_csv.degradation(i), from_qds.degradation(i));
    for (std::size_t f = 0; f < ds.width(); ++f) {
      ASSERT_DOUBLE_EQ(from_csv.row(i)[f], from_qds.row(i)[f])
          << "row " << i << " col " << f;
    }
  }
  // And the binary path is the bit-exact one: its feature block matches
  // the in-memory table directly.
  EXPECT_EQ(from_qds.feature_block(), ds.feature_block());
}


}  // namespace
}  // namespace qif::core
