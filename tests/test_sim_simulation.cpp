// Unit tests for the discrete-event engine: ordering, cancellation,
// horizons, determinism, and the periodic sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "qif/sim/rng.hpp"
#include "qif/sim/sampler.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/sim/stats.hpp"

namespace qif::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Simulation, ExecutesEventsInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SimultaneousEventsRunInScheduleOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation s;
  SimTime seen = -1;
  s.schedule_at(42, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(s.now(), 42);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation s;
  SimTime seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { seen = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(seen, 150);
}

TEST(Simulation, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulation s;
  int ran = 0;
  s.schedule_at(10, [&] { ++ran; });
  s.schedule_at(100, [&] { ++ran; });
  const auto executed = s.run_until(50);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), 50);  // clock tiles to the horizon
  s.run_all();
  EXPECT_EQ(ran, 2);
}

TEST(Simulation, EventAtExactHorizonFires) {
  Simulation s;
  bool fired = false;
  s.schedule_at(50, [&] { fired = true; });
  s.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation s;
  bool fired = false;
  const EventId id = s.schedule_at(10, [&] { fired = true; });
  s.cancel(id);
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterFireIsNoOp) {
  Simulation s;
  int count = 0;
  const EventId id = s.schedule_at(10, [&] { ++count; });
  s.run_all();
  s.cancel(id);  // must not crash or affect later events
  s.schedule_at(20, [&] { ++count; });
  s.run_all();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, CancelInvalidEventIsNoOp) {
  Simulation s;
  s.cancel(kInvalidEvent);
  s.schedule_at(1, [] {});
  EXPECT_EQ(s.run_all(), 1u);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_after(1, chain);
  };
  s.schedule_at(0, chain);
  s.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
}

TEST(Simulation, CancelThenRescheduleSameTickRunsOnlyReplacement) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(0); });
  const EventId doomed = s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(10, [&] { order.push_back(2); });
  s.cancel(doomed);
  // The replacement gets a fresh sequence id, so it runs after event 2 —
  // exactly what a cancel+reschedule at the same timestamp must do.
  s.schedule_at(10, [&] { order.push_back(3); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
  EXPECT_TRUE(s.check_invariants());
}

TEST(Simulation, DoubleCancelIsNoOp) {
  Simulation s;
  int count = 0;
  const EventId id = s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.cancel(id);
  s.cancel(id);  // second cancel must not disturb the other event
  s.run_all();
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.check_invariants());
}

TEST(Simulation, CancelOfRecycledSlotDoesNotKillNewEvent) {
  Simulation s;
  bool stale_fired = false;
  bool fresh_fired = false;
  const EventId stale = s.schedule_at(10, [&] { stale_fired = true; });
  s.cancel(stale);
  // The freed slot is recycled; the stale id's generation no longer matches.
  const EventId fresh = s.schedule_at(20, [&] { fresh_fired = true; });
  s.cancel(stale);
  s.run_all();
  EXPECT_FALSE(stale_fired);
  EXPECT_TRUE(fresh_fired);
  (void)fresh;
}

TEST(Simulation, EventCanCancelAnotherPendingEvent) {
  Simulation s;
  bool victim_fired = false;
  EventId victim = kInvalidEvent;
  victim = s.schedule_at(20, [&] { victim_fired = true; });
  s.schedule_at(10, [&] { s.cancel(victim); });
  s.run_all();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(Simulation, EventCancellingItselfWhileFiringIsNoOp) {
  Simulation s;
  int count = 0;
  EventId self = kInvalidEvent;
  self = s.schedule_at(10, [&] {
    ++count;
    s.cancel(self);  // the id is already released when the closure runs
  });
  s.schedule_at(20, [&] { ++count; });
  s.run_all();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(s.check_invariants());
}

TEST(Simulation, CancelChurnDoesNotGrowState) {
  // The old engine kept a cancelled-id tombstone set that grew without
  // bound under the FairLink pattern (cancel the pending completion,
  // schedule a new one, repeat).  The slot slab must stay at the peak
  // number of *simultaneously* pending events instead.
  Simulation s;
  EventId pending = s.schedule_at(1, [] {});
  for (int i = 2; i < 5000; ++i) {
    s.cancel(pending);
    pending = s.schedule_at(i, [] {});
  }
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_LE(s.slot_slab_size(), 4u);
  EXPECT_TRUE(s.check_invariants());
  s.run_all();
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(Simulation, InterleavedCancelKeepsHeapConsistent) {
  // Randomized structural check: cancel every third event out of a shuffled
  // schedule and verify heap order, back-pointers, and the free list.
  Simulation s;
  Rng rng(1234);
  std::vector<EventId> ids;
  std::vector<SimTime> fired;
  for (int i = 0; i < 500; ++i) {
    const SimTime when = rng.uniform_int(1, 10'000);
    ids.push_back(s.schedule_at(when, [&fired, &s] { fired.push_back(s.now()); }));
    if (i % 3 == 0) {
      s.cancel(ids[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(ids.size()) - 1))]);
      ASSERT_TRUE(s.check_invariants());
    }
  }
  ASSERT_TRUE(s.check_invariants());
  s.run_all();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(InlineTask, MoveTransfersClosureAndEmptiesSource) {
  int hits = 0;
  InlineTask a = [&hits] { ++hits; };
  InlineTask b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  b.reset();
  EXPECT_FALSE(static_cast<bool>(b));
}

TEST(InlineTask, DestroysCapturesExactlyOnce) {
  struct Probe {
    int* live;
    explicit Probe(int* l) : live(l) { ++*live; }
    Probe(const Probe& o) : live(o.live) { ++*live; }
    Probe(Probe&& o) noexcept : live(o.live) { o.live = nullptr; }
    ~Probe() {
      if (live != nullptr) --*live;
    }
    void operator()() const {}
  };
  int live = 0;
  {
    InlineTask t = Probe(&live);
    EXPECT_EQ(live, 1);
    InlineTask u = std::move(t);
    EXPECT_EQ(live, 1);  // relocation, not duplication
  }
  EXPECT_EQ(live, 0);
}

TEST(Simulation, PendingTracksQueue) {
  Simulation s;
  s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.run_until(15);
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Sampler, FiresAtExactPeriods) {
  Simulation s;
  std::vector<SimTime> times;
  Sampler sampler(s, kSecond, [&](std::uint64_t) { times.push_back(s.now()); });
  sampler.start();
  s.run_until(3 * kSecond + kMillisecond);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], kSecond);
  EXPECT_EQ(times[1], 2 * kSecond);
  EXPECT_EQ(times[2], 3 * kSecond);
}

TEST(Sampler, TickIndexIncrements) {
  Simulation s;
  std::vector<std::uint64_t> ticks;
  Sampler sampler(s, 10, [&](std::uint64_t t) { ticks.push_back(t); });
  sampler.start();
  s.run_until(35);
  EXPECT_EQ(ticks, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(sampler.ticks(), 3u);
}

TEST(Sampler, StopHaltsFiring) {
  Simulation s;
  int count = 0;
  Sampler sampler(s, 10, [&](std::uint64_t) {
    if (++count == 2) sampler.stop();
  });
  sampler.start();
  s.run_until(1000);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sampler.running());
}

TEST(Sampler, StartIsIdempotent) {
  Simulation s;
  int count = 0;
  Sampler sampler(s, 10, [&](std::uint64_t) { ++count; });
  sampler.start();
  sampler.start();
  s.run_until(25);
  EXPECT_EQ(count, 2);  // not doubled
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats st;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
  EXPECT_NEAR(st.stddev(), 2.0, 1e-12);  // classic example set
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats st;
  st.add(3.5);
  EXPECT_DOUBLE_EQ(st.mean(), 3.5);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  EXPECT_DOUBLE_EQ(st.min(), 3.5);
  EXPECT_DOUBLE_EQ(st.max(), 3.5);
}

TEST(MovingAverage, WindowOneIsIdentity) {
  const std::vector<double> xs = {1, 5, 2, 8};
  EXPECT_EQ(moving_average(xs, 1), xs);
}

TEST(MovingAverage, SmoothsConstantToConstant) {
  const std::vector<double> xs(20, 3.0);
  for (const double v : moving_average(xs, 5)) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(MovingAverage, CenteredWindowValues) {
  const std::vector<double> xs = {0, 3, 6, 9, 12};
  const auto out = moving_average(xs, 3);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0], 1.5);  // mean of {0,3}
  EXPECT_DOUBLE_EQ(out[1], 3.0);  // mean of {0,3,6}
  EXPECT_DOUBLE_EQ(out[2], 6.0);
  EXPECT_DOUBLE_EQ(out[4], 10.5);
}

TEST(MovingAverage, PreservesTotalLength) {
  std::vector<double> xs(123, 0.0);
  EXPECT_EQ(moving_average(xs, 10).size(), xs.size());
}

// Property sweep: the engine is deterministic — same schedule, same result.
class DeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismTest, ReplayProducesIdenticalEventTrace) {
  auto run_once = [&](std::uint64_t seed) {
    Simulation s;
    Rng rng(seed);
    std::vector<SimTime> trace;
    std::function<void()> spawn = [&] {
      trace.push_back(s.now());
      if (trace.size() < 200) {
        s.schedule_after(rng.uniform_int(1, 1000), spawn);
        if (rng.chance(0.3)) s.schedule_after(rng.uniform_int(1, 500), spawn);
      }
    };
    s.schedule_at(0, spawn);
    s.run_until(1'000'000);
    return trace;
  };
  const auto seed = static_cast<std::uint64_t>(GetParam());
  EXPECT_EQ(run_once(seed), run_once(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest, ::testing::Values(1, 2, 7, 99, 12345));

}  // namespace
}  // namespace qif::sim
