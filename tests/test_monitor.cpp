// Tests for the client-side and server-side monitors, the metric schema,
// and per-server feature assembly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "qif/monitor/client_monitor.hpp"
#include "qif/monitor/features.hpp"
#include "qif/monitor/schema.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::monitor {
namespace {

trace::OpRecord data_op(pfs::OpType type, std::int64_t bytes, sim::SimTime start,
                        sim::SimDuration dur, std::vector<std::int32_t> targets,
                        std::int32_t job = 0) {
  trace::OpRecord r;
  r.job = job;
  r.rank = 0;
  r.type = type;
  r.bytes = bytes;
  r.start = start;
  r.end = start + dur;
  r.targets = std::move(targets);
  return r;
}

TEST(MetricSchema, DimensionsAndLayout) {
  MetricSchema schema;
  EXPECT_EQ(schema.dim(), 37);
  EXPECT_EQ(MetricSchema::kClientFeatures, 10);
  EXPECT_EQ(MetricSchema::kServerFeatures, 27);
  EXPECT_EQ(static_cast<int>(schema.features().size()), schema.dim());
  // First block is client, rest is server-side.
  for (int i = 0; i < MetricSchema::kClientFeatures; ++i) {
    EXPECT_EQ(schema.at(i).group, FeatureGroup::kClient);
  }
  EXPECT_EQ(schema.at(10).group, FeatureGroup::kIoSpeed);
}

TEST(MetricSchema, GroupIndicesPartitionTheVector) {
  MetricSchema schema;
  std::size_t total = 0;
  for (const auto g : {FeatureGroup::kClient, FeatureGroup::kIoSpeed,
                       FeatureGroup::kDevice, FeatureGroup::kQueue}) {
    total += schema.group_indices(g).size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(schema.dim()));
}

TEST(MetricSchema, NamesAreUnique) {
  MetricSchema schema;
  std::set<std::string> names;
  for (const auto& f : schema.features()) names.insert(f.name);
  EXPECT_EQ(names.size(), static_cast<std::size_t>(schema.dim()));
}

TEST(MetricSchema, FaultVariantAppendsClientFaultBlock) {
  const MetricSchema healthy;
  const MetricSchema faulted(/*with_fault_features=*/true);
  EXPECT_FALSE(healthy.with_fault_features());
  EXPECT_TRUE(faulted.with_fault_features());
  EXPECT_EQ(healthy.dim(), MetricSchema::kPerServerDim);
  EXPECT_EQ(faulted.dim(), MetricSchema::kPerServerDimFaults);
  EXPECT_EQ(faulted.dim(), healthy.dim() + MetricSchema::kFaultFeatures);
  // The fault block sits right after the 10 client features and belongs to
  // the client group; the server block follows unchanged.
  EXPECT_EQ(faulted.at(MetricSchema::kClientFeatures).name, "cli_retries");
  EXPECT_EQ(faulted.at(MetricSchema::kClientFeatures + 1).name, "cli_timeouts");
  EXPECT_EQ(faulted.at(MetricSchema::kClientFeatures + 2).name, "cli_failed_ops");
  for (int k = 0; k < MetricSchema::kFaultFeatures; ++k) {
    EXPECT_EQ(faulted.at(MetricSchema::kClientFeatures + k).group, FeatureGroup::kClient);
  }
  EXPECT_EQ(faulted.at(MetricSchema::kClientFeatures + 3).group, FeatureGroup::kIoSpeed);
  // The first 10 names are identical, and the layout hashes differ so a
  // 40-wide .qds can never be misread as a 37-wide one.
  for (int i = 0; i < MetricSchema::kClientFeatures; ++i) {
    EXPECT_EQ(healthy.at(i).name, faulted.at(i).name);
  }
  EXPECT_NE(healthy.layout_hash(), faulted.layout_hash());
}

TEST(ClientMonitor, AggregatesPerWindowAndServer) {
  ClientMonitor mon(/*job=*/0, sim::kSecond, /*n_servers=*/3, /*mdt=*/2);
  mon.observe(data_op(pfs::OpType::kRead, 1 << 20, 0, 10 * sim::kMillisecond, {0}));
  mon.observe(data_op(pfs::OpType::kWrite, 2 << 20, sim::kMillisecond,
                      20 * sim::kMillisecond, {0, 1}));
  mon.observe(data_op(pfs::OpType::kStat, 0, 2 * sim::kMillisecond, sim::kMillisecond,
                      {trace::kMdtTarget}));
  const ClientWindow* c0 = mon.cell(0, 0);
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(c0->n_read, 1);
  EXPECT_EQ(c0->n_write, 1);
  EXPECT_EQ(c0->bytes_read, 1 << 20);
  EXPECT_EQ(c0->bytes_write, 1 << 20);  // split across two targets
  EXPECT_NEAR(c0->io_time_s, 0.030, 1e-9);
  const ClientWindow* c1 = mon.cell(0, 1);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->n_write, 1);
  const ClientWindow* mdt = mon.cell(0, 2);
  ASSERT_NE(mdt, nullptr);
  EXPECT_EQ(mdt->n_meta, 1);
  EXPECT_EQ(mon.ops_observed(), 3);
}

TEST(ClientMonitor, BucketsByStartTime) {
  ClientMonitor mon(0, sim::kSecond, 2, 1);
  mon.observe(data_op(pfs::OpType::kRead, 1, 2 * sim::kSecond + 1, 10, {0}));
  EXPECT_EQ(mon.cell(0, 0), nullptr);
  ASSERT_NE(mon.cell(2, 0), nullptr);
  EXPECT_EQ(mon.window_indices(), (std::vector<std::int64_t>{2}));
}

TEST(ClientMonitor, IgnoresOtherJobs) {
  ClientMonitor mon(0, sim::kSecond, 2, 1);
  mon.observe(data_op(pfs::OpType::kRead, 1, 0, 10, {0}, /*job=*/3));
  EXPECT_EQ(mon.ops_observed(), 0);
  EXPECT_EQ(mon.cell(0, 0), nullptr);
}

TEST(ClientMonitor, FillFeaturesDerivedMetrics) {
  ClientMonitor mon(0, sim::kSecond, 2, 1);
  mon.observe(data_op(pfs::OpType::kRead, 10 << 20, 0, 100 * sim::kMillisecond, {0}));
  double f[MetricSchema::kClientFeatures];
  mon.fill_features(0, 0, f);
  EXPECT_DOUBLE_EQ(f[0], 1.0);                       // n_read
  EXPECT_DOUBLE_EQ(f[4], 10 << 20);                  // bytes_read
  EXPECT_NEAR(f[7], 0.1, 1e-9);                      // io time
  EXPECT_NEAR(f[8], (10 << 20) / 0.1, 1.0);          // throughput
  EXPECT_DOUBLE_EQ(f[9], 1.0);                       // IOPS over a 1 s window
}

TEST(ClientMonitor, FillFeaturesZeroForUnknownWindow) {
  ClientMonitor mon(0, sim::kSecond, 2, 1);
  double f[MetricSchema::kClientFeatures];
  mon.fill_features(99, 0, f);
  for (const double v : f) EXPECT_EQ(v, 0.0);
}

struct ServerMonitorFixture : ::testing::Test {
  sim::Simulation s;
  pfs::ClusterConfig cfg;
  std::unique_ptr<pfs::Cluster> cluster;
  void SetUp() override {
    cfg.seed = 21;
    cluster = std::make_unique<pfs::Cluster>(s, cfg);
  }
};

TEST_F(ServerMonitorFixture, SamplesPerSecondDeltas) {
  ServerMonitor mon(*cluster, 2 * sim::kSecond);
  mon.start();
  // Generate disk traffic on OST 0 during the first second only.
  cluster->ost(0).read(0, 1 << 20, nullptr);
  s.run_until(4 * sim::kSecond);
  const ServerWindow* w0 = mon.window_data(0, 0);
  ASSERT_NE(w0, nullptr);
  // completed_reads (metric 0) summed over the window's 2 seconds == 1.
  EXPECT_DOUBLE_EQ(w0->metrics[0].sum(), 1.0);
  EXPECT_DOUBLE_EQ(w0->metrics[0].mean(), 0.5);
  // sectors_read (metric 2).
  EXPECT_DOUBLE_EQ(w0->metrics[2].sum(), (1 << 20) / 512.0);
  // Window 1 saw no traffic.
  const ServerWindow* w1 = mon.window_data(1, 0);
  ASSERT_NE(w1, nullptr);
  EXPECT_DOUBLE_EQ(w1->metrics[0].sum(), 0.0);
}

TEST_F(ServerMonitorFixture, FillFeaturesSumMeanStd) {
  ServerMonitor mon(*cluster, 2 * sim::kSecond);
  mon.start();
  cluster->ost(1).read(0, 2 << 20, nullptr);
  s.run_until(2 * sim::kSecond);
  double f[MetricSchema::kServerFeatures];
  mon.fill_features(0, 1, f);
  // Metric 0 = completed reads: sum 1, mean 0.5, std 0.5 over {1, 0}.
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 0.5);
  EXPECT_NEAR(f[2], 0.5, 1e-9);
}

TEST_F(ServerMonitorFixture, UnknownWindowYieldsZeros) {
  ServerMonitor mon(*cluster, sim::kSecond);
  double f[MetricSchema::kServerFeatures];
  mon.fill_features(7, 0, f);
  for (const double v : f) EXPECT_EQ(v, 0.0);
}

TEST_F(ServerMonitorFixture, AssemblerCombinesClientAndServerBlocks) {
  ClientMonitor cmon(0, sim::kSecond, cluster->n_servers(), cluster->mdt_server_index());
  ServerMonitor smon(*cluster, sim::kSecond);
  smon.start();
  cluster->trace_log().set_observer([&](const trace::OpRecord& r) { cmon.observe(r); });
  pfs::PfsClient& client = cluster->make_client(0, 0, 0);
  client.create("/x", 1, [&](pfs::FileHandle fh) {
    client.read(fh, 0, 1 << 20, [] {});
  });
  s.run_until(sim::kSecond);
  FeatureAssembler assembler(cmon, smon, cluster->n_servers());
  const auto features = assembler.window_features(0);
  ASSERT_EQ(features.size(),
            static_cast<std::size_t>(cluster->n_servers()) * MetricSchema::kPerServerDim);
  // Some server's client block must carry the read; the MDT block the create.
  double total_reads = 0.0, total_meta = 0.0;
  for (int srv = 0; srv < cluster->n_servers(); ++srv) {
    total_reads += features[srv * MetricSchema::kPerServerDim + 0];
    total_meta += features[srv * MetricSchema::kPerServerDim + 2];
  }
  EXPECT_DOUBLE_EQ(total_reads, 1.0);
  EXPECT_GE(total_meta, 1.0);
}

TEST(Dataset, HistogramAndAppend) {
  Dataset a(2, 3);
  double* f0 = a.append_row(0, 0, 1.0);
  for (int j = 0; j < 6; ++j) f0[j] = 1.0 + j;
  for (int i = 1; i < 3; ++i) {
    double* f = a.append_row(i, 2, 1.0);
    for (int j = 0; j < 6; ++j) f[j] = 1.0 + j;
  }
  const auto hist = a.class_histogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 0u);
  EXPECT_EQ(hist[2], 2u);

  Dataset b;
  b.append(a);
  EXPECT_EQ(b.n_servers(), 2);
  EXPECT_EQ(b.size(), 3u);
  b.append(a);
  EXPECT_EQ(b.size(), 6u);
  EXPECT_DOUBLE_EQ(b.row(5)[5], 6.0);
}

TEST(Dataset, AppendShapeMismatchThrows) {
  Dataset a(2, 3);
  a.append_row(0, 0, 1.0);
  Dataset wrong(3, 3);
  wrong.append_row(0, 0, 1.0);
  EXPECT_THROW(a.append(wrong), std::invalid_argument);
  Dataset wrong_dim(2, 4);
  wrong_dim.append_row(0, 0, 1.0);
  EXPECT_THROW(a.append(wrong_dim), std::invalid_argument);
  // Appending an empty, shapeless table is a no-op, not an error.
  const Dataset empty;
  a.append(empty);
  EXPECT_EQ(a.size(), 1u);
}

}  // namespace
}  // namespace qif::monitor
