// Tests for the deterministic fault-injection layer: plan parsing (with
// pinned diagnostics), episode mechanics on a live cluster, the client
// timeout/retry machine, and the bit-identity contract for empty or
// never-triggered plans.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "qif/core/scenario.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/pfs/faults.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs::faults {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(FaultPlanParse, EmptySpecYieldsEmptyPlan) {
  const FaultPlan plan = parse_fault_plan("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.size(), 0u);
  EXPECT_EQ(to_spec(plan), "");
}

TEST(FaultPlanParse, ParsesEveryKind) {
  const FaultPlan plan = parse_fault_plan(
      "slow:ost=1,start=5,dur=30,factor=8;"
      "stall:ost=0,start=40,dur=10;"
      "drop:p=0.25,start=0.5,dur=2.5");
  ASSERT_EQ(plan.slow_disks.size(), 1u);
  ASSERT_EQ(plan.stalls.size(), 1u);
  ASSERT_EQ(plan.rpc_loss.size(), 1u);
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.slow_disks[0].ost, 1);
  EXPECT_EQ(plan.slow_disks[0].start, 5 * sim::kSecond);
  EXPECT_EQ(plan.slow_disks[0].duration, 30 * sim::kSecond);
  EXPECT_DOUBLE_EQ(plan.slow_disks[0].factor, 8.0);
  EXPECT_EQ(plan.stalls[0].ost, 0);
  EXPECT_EQ(plan.stalls[0].start, 40 * sim::kSecond);
  EXPECT_EQ(plan.stalls[0].duration, 10 * sim::kSecond);
  EXPECT_DOUBLE_EQ(plan.rpc_loss[0].probability, 0.25);
  EXPECT_EQ(plan.rpc_loss[0].start, 500 * sim::kMillisecond);
  EXPECT_EQ(plan.rpc_loss[0].duration, 2500 * sim::kMillisecond);
}

TEST(FaultPlanParse, RoundTripsThroughSpec) {
  const std::string spec =
      "slow:ost=3,start=1.5,dur=12,factor=4;"
      "slow:ost=0,start=0,dur=60,factor=1.5;"
      "stall:ost=2,start=8,dur=0.25;"
      "drop:p=0.05,start=3,dur=9";
  const FaultPlan plan = parse_fault_plan(spec);
  const std::string canonical = to_spec(plan);
  const FaultPlan again = parse_fault_plan(canonical);
  EXPECT_EQ(to_spec(again), canonical);
  ASSERT_EQ(again.slow_disks.size(), 2u);
  ASSERT_EQ(again.stalls.size(), 1u);
  ASSERT_EQ(again.rpc_loss.size(), 1u);
  EXPECT_EQ(again.slow_disks[0].ost, plan.slow_disks[0].ost);
  EXPECT_EQ(again.slow_disks[0].start, plan.slow_disks[0].start);
  EXPECT_EQ(again.slow_disks[0].duration, plan.slow_disks[0].duration);
  EXPECT_DOUBLE_EQ(again.slow_disks[0].factor, plan.slow_disks[0].factor);
  EXPECT_EQ(again.stalls[0].start, plan.stalls[0].start);
  EXPECT_DOUBLE_EQ(again.rpc_loss[0].probability, plan.rpc_loss[0].probability);
}

void expect_parse_error(const std::string& spec, const std::string& message) {
  try {
    (void)parse_fault_plan(spec);
    FAIL() << "expected parse failure for: " << spec;
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), message) << "spec: " << spec;
  }
}

TEST(FaultPlanParse, DiagnosticsNameClauseAndOffset) {
  // Pinned formats: fuzz-found rejections must stay diagnosable, so these
  // exact strings are part of the parser's contract.
  expect_parse_error("bogus:x=1",
                     "fault plan: clause 1, offset 0: unknown fault kind 'bogus'");
  expect_parse_error("slow:ost=abc,start=0,dur=5,factor=2",
                     "fault plan: clause 1, offset 9: bad number 'abc' for 'ost'");
  expect_parse_error(
      "slow:ost=0,start=0,dur=5,factor=2;stall:ost=0",
      "fault plan: clause 2, offset 34: missing required key 'start'");
  expect_parse_error(
      "slow:ost=0,start=0,dur=5,factor=2,zap=1",
      "fault plan: clause 1, offset 34: unknown key 'zap'");
  expect_parse_error("slow:ost=0,start=0,dur=1,factor=0.5",
                     "fault plan: clause 1, offset 0: factor must be >= 1");
  expect_parse_error("drop:p=1.5,start=0,dur=1",
                     "fault plan: clause 1, offset 0: p must be in [0,1]");
  expect_parse_error("stall:ost=0,start=0,dur=0",
                     "fault plan: clause 1, offset 0: need start >= 0 and dur > 0");
  expect_parse_error(";", "fault plan: clause 1, offset 0: empty clause");
  expect_parse_error("stall", "fault plan: clause 1, offset 0: "
                              "expected 'kind:' prefix (slow|stall|drop)");
  expect_parse_error("stall:ost", "fault plan: clause 1, offset 6: expected key=value");
}

// ---------------------------------------------------------------------------
// Injector mechanics against a live cluster
// ---------------------------------------------------------------------------

TEST(FaultInjector, RejectsOutOfRangeOst) {
  sim::Simulation s;
  Cluster cluster(s, core::testbed_cluster_config(5));  // 3 OSS x 2 OST = 6
  {
    FaultPlan plan;
    plan.slow_disks.push_back({6, 0, sim::kSecond, 2.0});
    EXPECT_THROW(FaultInjector(cluster, plan, 1), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.stalls.push_back({-1, 0, sim::kSecond});
    EXPECT_THROW(FaultInjector(cluster, plan, 1), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.rpc_loss.push_back({0, sim::kSecond, 1.5});
    EXPECT_THROW(FaultInjector(cluster, plan, 1), std::invalid_argument);
  }
}

TEST(FaultInjector, SlowEpisodesStackMultiplicativelyAndRestoreExactly) {
  sim::Simulation s;
  Cluster cluster(s, core::testbed_cluster_config(6));
  FaultPlan plan;
  plan.slow_disks.push_back({0, 2 * sim::kSecond, 8 * sim::kSecond, 2.0});
  plan.slow_disks.push_back({0, 5 * sim::kSecond, 10 * sim::kSecond, 3.0});
  FaultInjector injector(cluster, plan, 42);
  EXPECT_DOUBLE_EQ(cluster.ost(0).disk().fault_multiplier(), 1.0);
  s.run_until(3 * sim::kSecond);
  EXPECT_DOUBLE_EQ(cluster.ost(0).disk().fault_multiplier(), 2.0);
  s.run_until(6 * sim::kSecond);  // both active: factors stack
  EXPECT_DOUBLE_EQ(cluster.ost(0).disk().fault_multiplier(), 6.0);
  s.run_until(11 * sim::kSecond);  // first episode ended at t=10
  EXPECT_DOUBLE_EQ(cluster.ost(0).disk().fault_multiplier(), 3.0);
  s.run_until(16 * sim::kSecond);  // all episodes over
  // Exactly 1.0, not 1.0-plus-epsilon: the restore must be drift-free.
  EXPECT_EQ(cluster.ost(0).disk().fault_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.ost(1).disk().fault_multiplier(), 1.0);  // untouched
  EXPECT_EQ(injector.activations(), 2);
}

TEST(FaultInjector, StallWindowsNestByDepth) {
  sim::Simulation s;
  Cluster cluster(s, core::testbed_cluster_config(7));
  FaultPlan plan;
  plan.stalls.push_back({1, sim::kSecond, 4 * sim::kSecond});
  plan.stalls.push_back({1, 2 * sim::kSecond, sim::kSecond});
  FaultInjector injector(cluster, plan, 42);
  EXPECT_FALSE(cluster.ost(1).disk().stalled());
  s.run_until(1500 * sim::kMillisecond);
  EXPECT_TRUE(cluster.ost(1).disk().stalled());
  s.run_until(3500 * sim::kMillisecond);  // inner window over, outer still on
  EXPECT_TRUE(cluster.ost(1).disk().stalled());
  s.run_until(6 * sim::kSecond);
  EXPECT_FALSE(cluster.ost(1).disk().stalled());
}

TEST(FaultInjector, LossWindowsComposeAndGateDraws) {
  sim::Simulation s;
  Cluster cluster(s, core::testbed_cluster_config(8));
  FaultPlan plan;
  plan.rpc_loss.push_back({sim::kSecond, 2 * sim::kSecond, 0.5});
  plan.rpc_loss.push_back({2 * sim::kSecond, 2 * sim::kSecond, 0.5});
  FaultInjector injector(cluster, plan, 42);
  EXPECT_DOUBLE_EQ(injector.active_loss_probability(), 0.0);
  EXPECT_FALSE(injector.should_drop_message());  // outside any window: no draw
  s.run_until(1500 * sim::kMillisecond);
  EXPECT_DOUBLE_EQ(injector.active_loss_probability(), 0.5);
  s.run_until(2500 * sim::kMillisecond);
  // Independent overlapping windows: 1 - (1-0.5)(1-0.5).
  EXPECT_DOUBLE_EQ(injector.active_loss_probability(), 0.75);
  int drops = 0;
  for (int i = 0; i < 1000; ++i) drops += injector.should_drop_message() ? 1 : 0;
  EXPECT_GT(drops, 600);  // ~750 expected
  EXPECT_LT(drops, 900);
  EXPECT_EQ(injector.messages_dropped(), static_cast<std::uint64_t>(drops));
  s.run_until(5 * sim::kSecond);
  EXPECT_DOUBLE_EQ(injector.active_loss_probability(), 0.0);
  EXPECT_FALSE(injector.should_drop_message());
}

// ---------------------------------------------------------------------------
// Scenario-level behaviour
// ---------------------------------------------------------------------------

core::ScenarioConfig fault_scenario(std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(seed);
  cfg.target.workload = "ior-easy-write";
  cfg.target.nodes = {0};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = seed;
  cfg.target.scale = 0.5;
  cfg.monitors = false;
  return cfg;
}

FaultPlan slow_everywhere(double factor) {
  FaultPlan plan;
  for (OstId ost = 0; ost < 6; ++ost) {
    plan.slow_disks.push_back({ost, 0, 600 * sim::kSecond, factor});
  }
  return plan;
}

FaultPlan stall_everywhere(sim::SimDuration duration) {
  FaultPlan plan;
  for (OstId ost = 0; ost < 6; ++ost) plan.stalls.push_back({ost, 0, duration});
  return plan;
}

struct FaultTotals {
  long long retries = 0;
  long long timeouts = 0;
  long long failed = 0;
};

FaultTotals totals(const trace::TraceLog& log) {
  FaultTotals t;
  for (const trace::OpRecord& rec : log.records()) {
    t.retries += rec.retries;
    t.timeouts += rec.timeouts;
    t.failed += rec.failed ? 1 : 0;
  }
  return t;
}

TEST(FaultScenario, SlowDiskEpisodeSlowsTheTarget) {
  const core::ScenarioResult healthy = core::run_scenario(fault_scenario(3));
  core::ScenarioConfig degraded = fault_scenario(3);
  degraded.faults = slow_everywhere(8.0);
  const core::ScenarioResult slow = core::run_scenario(degraded);
  ASSERT_TRUE(healthy.target_finished);
  ASSERT_TRUE(slow.target_finished);
  EXPECT_GT(static_cast<double>(slow.target_completion),
            3.0 * static_cast<double>(healthy.target_completion));
  // Slowness alone never trips the (5 s default) deadline machinery.
  const FaultTotals t = totals(slow.trace);
  EXPECT_EQ(t.retries, 0);
  EXPECT_EQ(t.failed, 0);
}

TEST(FaultScenario, StallDrivesTimeoutsRetriesAndFailures) {
  core::ScenarioConfig cfg = fault_scenario(4);
  // Tighten the retry machine so a 20 s blackout exhausts it quickly.
  cfg.cluster.client.rpc_deadline = 200 * sim::kMillisecond;
  cfg.cluster.client.retry_backoff = 50 * sim::kMillisecond;
  cfg.cluster.client.rpc_max_retries = 3;
  cfg.faults = stall_everywhere(20 * sim::kSecond);
  cfg.horizon = 60 * sim::kSecond;
  const core::ScenarioResult res = core::run_scenario(cfg);
  const FaultTotals t = totals(res.trace);
  EXPECT_GT(t.timeouts, 0);
  EXPECT_GT(t.retries, 0);
  EXPECT_GT(t.failed, 0);
  // Each failed op burned every retry before giving up.
  EXPECT_GE(t.timeouts, t.failed * 4);
}

TEST(FaultScenario, RpcLossRetriesRecoverAfterTheWindow) {
  core::ScenarioConfig cfg = fault_scenario(11);
  cfg.cluster.client.rpc_deadline = 300 * sim::kMillisecond;
  cfg.cluster.client.retry_backoff = 50 * sim::kMillisecond;
  cfg.cluster.client.rpc_max_retries = 8;
  FaultPlan plan;
  plan.rpc_loss.push_back({0, 3 * sim::kSecond, 0.4});
  cfg.faults = plan;
  cfg.horizon = 120 * sim::kSecond;
  const core::ScenarioResult res = core::run_scenario(cfg);
  EXPECT_GT(totals(res.trace).retries, 0);
  // Once the loss window closes every retry goes through.
  EXPECT_TRUE(res.target_finished);
}

TEST(FaultScenario, FarFuturePlanLeavesTraceBitIdentical) {
  // A non-empty plan arms the deadline timers, but as long as no episode
  // fires the op stream must be bit-identical to a healthy run: timers are
  // cancelled events, not behaviour.
  const core::ScenarioResult healthy = core::run_scenario(fault_scenario(7));
  core::ScenarioConfig armed = fault_scenario(7);
  FaultPlan plan;
  plan.slow_disks.push_back({0, 4000 * sim::kSecond, sim::kSecond, 8.0});
  armed.faults = plan;
  const core::ScenarioResult res = core::run_scenario(armed);
  EXPECT_EQ(res.target_completion, healthy.target_completion);
  ASSERT_EQ(res.trace.size(), healthy.trace.size());
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    const trace::OpRecord& a = healthy.trace.records()[i];
    const trace::OpRecord& b = res.trace.records()[i];
    EXPECT_EQ(a.start, b.start) << "op " << i;
    EXPECT_EQ(a.end, b.end) << "op " << i;
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.targets, b.targets);
    EXPECT_EQ(b.retries, 0);
    EXPECT_EQ(b.timeouts, 0);
    EXPECT_FALSE(b.failed);
  }
}

TEST(FaultScenario, FaultedRunsAreDeterministic) {
  const auto make = [] {
    core::ScenarioConfig cfg = fault_scenario(9);
    cfg.cluster.client.rpc_deadline = 300 * sim::kMillisecond;
    cfg.cluster.client.retry_backoff = 50 * sim::kMillisecond;
    FaultPlan plan = stall_everywhere(5 * sim::kSecond);
    plan.rpc_loss.push_back({0, 4 * sim::kSecond, 0.3});
    cfg.faults = plan;
    cfg.horizon = 60 * sim::kSecond;
    return cfg;
  };
  const core::ScenarioResult a = core::run_scenario(make());
  const core::ScenarioResult b = core::run_scenario(make());
  EXPECT_EQ(a.target_completion, b.target_completion);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const trace::OpRecord& x = a.trace.records()[i];
    const trace::OpRecord& y = b.trace.records()[i];
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.end, y.end);
    EXPECT_EQ(x.retries, y.retries);
    EXPECT_EQ(x.timeouts, y.timeouts);
    EXPECT_EQ(x.failed, y.failed);
  }
}

TEST(FaultScenario, FaultFeaturesWidenMonitoredWindows) {
  core::ScenarioConfig cfg = fault_scenario(10);
  cfg.monitors = true;
  cfg.cluster.client.rpc_deadline = 300 * sim::kMillisecond;
  cfg.cluster.client.retry_backoff = 50 * sim::kMillisecond;
  cfg.faults = stall_everywhere(8 * sim::kSecond);
  cfg.horizon = 60 * sim::kSecond;
  const core::ScenarioResult res = core::run_scenario(cfg);
  EXPECT_EQ(res.dim, monitor::MetricSchema::kPerServerDimFaults);
  ASSERT_FALSE(res.window_features.empty());
  // The fault block sits right after the 10 client features in every
  // per-server vector; a cluster-wide stall must light it up somewhere.
  double fault_mass = 0.0;
  const int dim = res.dim;
  for (std::size_t i = 0; i < res.window_features.size(); ++i) {
    const double* row = res.window_features.row(i);
    for (int srv = 0; srv < res.n_servers; ++srv) {
      for (int k = 0; k < monitor::MetricSchema::kFaultFeatures; ++k) {
        fault_mass += row[srv * dim + monitor::MetricSchema::kClientFeatures + k];
      }
    }
  }
  EXPECT_GT(fault_mass, 0.0);

  // The healthy twin keeps the historical 37-wide layout.
  core::ScenarioConfig healthy = fault_scenario(10);
  healthy.monitors = true;
  EXPECT_EQ(core::run_scenario(healthy).dim, monitor::MetricSchema::kPerServerDim);
}

}  // namespace
}  // namespace qif::pfs::faults
