// Integration tests for the core framework: scenarios, campaigns, the
// training server, and the online predictor.
#include <gtest/gtest.h>

#include <algorithm>

#include <sstream>

#include "qif/core/campaign.hpp"
#include "qif/core/online.hpp"
#include "qif/core/scenario.hpp"
#include "qif/core/report.hpp"
#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"

namespace qif::core {
namespace {

ScenarioConfig small_scenario(const std::string& workload, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.cluster = testbed_cluster_config(seed);
  cfg.target.workload = workload;
  cfg.target.nodes = {0};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = seed;
  cfg.target.scale = 0.25;
  return cfg;
}

TEST(Scenario, BaselineRunCompletesAndTraces) {
  ScenarioConfig cfg = small_scenario("ior-easy-write", 1);
  cfg.monitors = false;
  const ScenarioResult res = run_scenario(cfg);
  EXPECT_TRUE(res.target_finished);
  EXPECT_GT(res.target_completion, 0);
  EXPECT_GT(res.events_executed, 0u);
  EXPECT_FALSE(res.trace.empty());
  EXPECT_TRUE(res.window_features.empty());  // monitors off
}

TEST(Scenario, MonitorsProduceWindowFeatures) {
  ScenarioConfig cfg = small_scenario("ior-easy-write", 2);
  const ScenarioResult res = run_scenario(cfg);
  EXPECT_EQ(res.n_servers, 7);
  EXPECT_EQ(res.dim, monitor::MetricSchema::kPerServerDim);
  ASSERT_FALSE(res.window_features.empty());
  EXPECT_EQ(res.window_features.n_servers(), 7);
  EXPECT_EQ(res.window_features.width(), 7u * monitor::MetricSchema::kPerServerDim);
  for (std::size_t i = 0; i < res.window_features.size(); ++i) {
    EXPECT_GE(res.window_features.window_index(i), 0);
    if (i > 0) {  // rows are appended in ascending window order
      EXPECT_LT(res.window_features.window_index(i - 1),
                res.window_features.window_index(i));
    }
  }
}

TEST(Scenario, IdenticalConfigIsDeterministic) {
  const ScenarioResult a = run_scenario(small_scenario("enzo", 3));
  const ScenarioResult b = run_scenario(small_scenario("enzo", 3));
  EXPECT_EQ(a.target_completion, b.target_completion);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST(Scenario, InterferenceSlowsTarget) {
  ScenarioConfig solo = small_scenario("ior-easy-write", 4);
  solo.target.scale = 1.0;
  ScenarioConfig noisy = solo;
  InterferenceSpec spec;
  spec.workload = "ior-easy-read";
  spec.nodes = {2, 3, 4};
  spec.instances = 9;
  noisy.interference = spec;
  const auto t_solo = run_scenario(solo).target_completion;
  const auto t_noisy = run_scenario(noisy).target_completion;
  EXPECT_GT(static_cast<double>(t_noisy), 1.5 * static_cast<double>(t_solo));
}

TEST(Scenario, HorizonBoundsRuntime) {
  ScenarioConfig cfg = small_scenario("ior-easy-write", 5);
  cfg.target.scale = 50.0;  // would run for a long time
  InterferenceSpec spec;
  spec.workload = "ior-easy-write";
  spec.nodes = {2};
  spec.instances = 2;
  cfg.interference = spec;
  cfg.horizon = 2 * sim::kSecond;
  const ScenarioResult res = run_scenario(cfg);
  EXPECT_FALSE(res.target_finished);
}

TEST(Campaign, ProducesLabelledDatasetWithBothClasses) {
  CampaignConfig cc;
  cc.target_workload = "ior-easy-write";
  cc.target_nodes = 1;
  cc.target_procs_per_node = 2;
  cc.target_scale = 0.5;
  cc.cluster = testbed_cluster_config(6);
  cc.cases.push_back({"", 0, 1.0, 1});
  cc.cases.push_back({"ior-easy-read", 12, 1.0, 2});
  Campaign campaign(cc);
  const monitor::Dataset ds = campaign.run();
  ASSERT_FALSE(ds.empty());
  EXPECT_EQ(ds.n_servers(), 7);
  const auto hist = ds.class_histogram();
  EXPECT_GT(hist[0], 0u);  // quiet case yields negatives
  ASSERT_GE(hist.size(), 2u);
  EXPECT_GT(hist[1], 0u);  // noisy case yields positives
  // Bookkeeping.
  ASSERT_EQ(campaign.outcomes().size(), 2u);
  EXPECT_GT(campaign.outcomes()[0].matched_ops, 0u);
  EXPECT_LT(campaign.outcomes()[0].mean_degradation, 1.5);
  EXPECT_GT(campaign.outcomes()[1].mean_degradation, 1.5);
}

TEST(Campaign, MeanDegradationAveragesOnlySampledWindows) {
  // Regression: deg_sum skips windows with no captured features, so the
  // mean must divide by the number of windows actually summed — dividing
  // by labels.size() biased the headline degradation number low.
  CampaignConfig cc;  // window = 1 s, thresholds {2}
  CaseSpec cs;
  cs.interference_workload = "ior-easy-read";
  cs.seed = 5;

  trace::TraceLog base_log, noisy_log;
  const auto add = [](trace::TraceLog& log, std::int64_t idx, sim::SimTime start,
                      sim::SimDuration dur) {
    trace::OpRecord r;
    r.job = 0;
    r.rank = 0;
    r.op_index = idx;
    r.type = pfs::OpType::kWrite;
    r.bytes = 4096;
    r.start = start;
    r.end = start + dur;
    log.record(std::move(r));
  };
  // Three windows with degradations 2x, 3x and 10x (windowing follows the
  // interference op's start time).
  add(base_log, 0, 0, sim::kMillisecond);
  add(noisy_log, 0, 100 * sim::kMillisecond, 2 * sim::kMillisecond);
  add(base_log, 1, sim::kSecond, sim::kMillisecond);
  add(noisy_log, 1, sim::kSecond + 100 * sim::kMillisecond, 3 * sim::kMillisecond);
  add(base_log, 2, 2 * sim::kSecond, sim::kMillisecond);
  add(noisy_log, 2, 2 * sim::kSecond + 100 * sim::kMillisecond, 10 * sim::kMillisecond);

  ScenarioResult run;
  run.trace = noisy_log;
  run.target_finished = true;
  run.n_servers = 2;
  run.dim = 3;
  run.window_features.set_shape(2, 3);
  std::fill_n(run.window_features.append_row(0, 0, 1.0), 6, 1.0);
  std::fill_n(run.window_features.append_row(1, 0, 1.0), 6, 2.0);
  // Window 2 (the 10x one) deliberately has no captured features.

  const CaseResult cr = join_case_result(cc, cs, base_log, run);
  EXPECT_EQ(cr.outcome.windows, 3u);
  EXPECT_EQ(cr.outcome.sampled_windows, 2u);
  EXPECT_EQ(cr.shard.size(), 2u);
  // (2 + 3) / 2 over the sampled windows; the pre-fix code computed
  // (2 + 3) / 3 ≈ 1.67.
  EXPECT_DOUBLE_EQ(cr.outcome.mean_degradation, 2.5);
}

TEST(Campaign, ThrowingCaseIsCapturedPerCase) {
  CampaignConfig cc;
  cc.target_workload = "ior-easy-write";
  cc.target_nodes = 1;
  cc.target_procs_per_node = 2;
  cc.target_scale = 0.5;
  cc.cluster = testbed_cluster_config(31);
  cc.cases.push_back({"", 0, 1.0, 1});
  cc.cases.push_back({"no-such-workload", 6, 1.0, 1});
  Campaign campaign(cc);
  const monitor::Dataset ds = campaign.run();  // must not throw
  ASSERT_EQ(campaign.outcomes().size(), 2u);
  EXPECT_TRUE(campaign.outcomes()[0].ok());
  EXPECT_FALSE(campaign.outcomes()[1].ok());
  EXPECT_NE(campaign.outcomes()[1].error.find("no-such-workload"), std::string::npos);
  EXPECT_FALSE(ds.empty());  // the healthy case still contributed samples
}

TEST(Campaign, QuietCaseDegradationNearOne) {
  CampaignConfig cc;
  cc.target_workload = "mdt-easy-write";
  cc.target_nodes = 1;
  cc.target_procs_per_node = 1;
  cc.target_scale = 0.5;
  cc.cluster = testbed_cluster_config(7);
  cc.cases.push_back({"", 0, 1.0, 3});
  Campaign campaign(cc);
  const monitor::Dataset ds = campaign.run();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_LT(ds.degradation(i), 1.6) << "quiet window should not look degraded";
    EXPECT_EQ(ds.label(i), 0);
  }
}

monitor::Dataset tiny_training_set(std::uint64_t seed) {
  CampaignConfig cc;
  cc.target_workload = "ior-easy-write";
  cc.target_nodes = 1;
  cc.target_procs_per_node = 2;
  cc.target_scale = 3.0;
  cc.cluster = testbed_cluster_config(seed);
  for (std::uint64_t i = 0; i < 2; ++i) {
    cc.cases.push_back({"", 0, 1.0, 10 + i});
    cc.cases.push_back({"ior-easy-read", 12, 1.0, 20 + i});
  }
  Campaign campaign(cc);
  return campaign.run();
}

TEST(TrainingServer, FitPredictEvaluate) {
  const monitor::Dataset ds = tiny_training_set(8);
  ASSERT_GT(ds.size(), 10u);
  auto [train, test] = ml::split_dataset(ds, 0.25, 3);
  TrainingServerConfig cfg;
  cfg.n_classes = 2;
  TrainingServer server(cfg);
  const ml::TrainResult tr = server.fit(train);
  EXPECT_GT(tr.best_val_macro_f1, 0.5);
  const ml::ConfusionMatrix cm = server.evaluate(test);
  EXPECT_GT(cm.accuracy(), 0.7);

  // Single-sample prediction API agrees with batch evaluation.
  const std::vector<double> features = test.row_vector(0);
  const int pred = server.predict(features);
  const auto proba = server.predict_proba(features);
  ASSERT_EQ(proba.size(), 2u);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
  EXPECT_EQ(pred, proba[1] > proba[0] ? 1 : 0);
  EXPECT_EQ(server.server_scores(features).size(), 7u);
}

TEST(TrainingServer, SaveLoadRoundTripPredictions) {
  const monitor::Dataset ds = tiny_training_set(9);
  TrainingServerConfig cfg;
  cfg.n_classes = 2;
  cfg.train.max_epochs = 10;
  TrainingServer server(cfg);
  server.fit(ds);
  std::stringstream ss;
  server.save(ss);
  TrainingServer loaded(TrainingServerConfig{});
  loaded.load(ss);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const std::vector<double> features = ds.row_vector(i);
    EXPECT_EQ(loaded.predict(features), server.predict(features));
  }
}

TEST(TrainingServer, RejectsEmptyDataset) {
  TrainingServer server(TrainingServerConfig{});
  const monitor::Dataset empty;
  EXPECT_THROW(server.fit(empty), std::invalid_argument);
}

TEST(TrainingServer, LoadThrowsOnTruncatedBundle) {
  // Regression: model loading used to ignore stream state, so a truncated
  // file silently produced a garbage model/standardizer.
  const monitor::Dataset ds = tiny_training_set(12);
  TrainingServerConfig cfg;
  cfg.n_classes = 2;
  cfg.train.max_epochs = 5;
  TrainingServer server(cfg);
  server.fit(ds);
  std::stringstream ss;
  server.save(ss);
  const std::string full = ss.str();
  // Cutting the bundle anywhere after the header must fail loudly.
  std::stringstream truncated(full.substr(0, full.size() / 2));
  TrainingServer loaded(TrainingServerConfig{});
  EXPECT_THROW(loaded.load(truncated), std::runtime_error);
  std::stringstream garbage("not-a-model 1\n2\n");
  EXPECT_THROW(loaded.load(garbage), std::runtime_error);
}

TEST(OnlinePredictor, EmitsPredictionEveryWindow) {
  // Train a quick model, then deploy it against a live run.
  const monitor::Dataset ds = tiny_training_set(10);
  TrainingServerConfig tcfg;
  tcfg.n_classes = 2;
  tcfg.train.max_epochs = 15;
  TrainingServer server(tcfg);
  server.fit(ds);

  sim::Simulation s;
  pfs::ClusterConfig cc = testbed_cluster_config(11);
  pfs::Cluster cluster(s, cc);
  monitor::ClientMonitor cmon(0, sim::kSecond, cluster.n_servers(),
                              cluster.mdt_server_index());
  monitor::ServerMonitor smon(cluster, sim::kSecond);
  smon.start();
  cluster.trace_log().set_observer(
      [&](const trace::OpRecord& r) { cmon.observe(r); });

  workloads::JobSpec spec;
  spec.workload = "ior-easy-write";
  spec.nodes = {0};
  spec.procs_per_node = 2;
  spec.seed = 12;
  spec.scale = 2.0;
  workloads::JobInstance job(cluster, spec, /*loop=*/false);

  int callbacks = 0;
  OnlinePredictor predictor(cluster, server, cmon, smon, [&](const Prediction& p) {
    ++callbacks;
    EXPECT_EQ(p.probabilities.size(), 2u);
    EXPECT_EQ(p.server_scores.size(), 7u);
  });
  predictor.start();
  job.start(nullptr);
  s.run_until(4 * sim::kSecond);
  predictor.stop();
  EXPECT_EQ(callbacks, 4);
  ASSERT_EQ(predictor.history().size(), 4u);
  EXPECT_EQ(predictor.history()[0].window_index, 0);
  EXPECT_TRUE(predictor.history()[0].had_activity);
}

TEST(OnlinePredictor, HistoryRingEvictsOldestBeyondCapacity) {
  // Long scenarios used to grow history_ without bound; the ring keeps the
  // most recent history_capacity predictions and history_total() counts
  // every emission, evicted ones included.
  const monitor::Dataset ds = tiny_training_set(10);
  TrainingServerConfig tcfg;
  tcfg.n_classes = 2;
  tcfg.train.max_epochs = 15;
  TrainingServer server(tcfg);
  server.fit(ds);

  sim::Simulation s;
  pfs::ClusterConfig cc = testbed_cluster_config(11);
  pfs::Cluster cluster(s, cc);
  monitor::ClientMonitor cmon(0, sim::kSecond, cluster.n_servers(),
                              cluster.mdt_server_index());
  monitor::ServerMonitor smon(cluster, sim::kSecond);
  smon.start();
  cluster.trace_log().set_observer(
      [&](const trace::OpRecord& r) { cmon.observe(r); });

  workloads::JobSpec spec;
  spec.workload = "ior-easy-write";
  spec.nodes = {0};
  spec.procs_per_node = 2;
  spec.seed = 12;
  spec.scale = 2.0;
  workloads::JobInstance job(cluster, spec, /*loop=*/false);

  OnlinePredictorConfig pcfg;
  pcfg.history_capacity = 2;
  OnlinePredictor predictor(cluster, server, cmon, smon, nullptr, pcfg);
  predictor.start();
  job.start(nullptr);
  s.run_until(4 * sim::kSecond);
  predictor.stop();

  EXPECT_EQ(predictor.history_total(), 4u);
  ASSERT_EQ(predictor.history().size(), 2u);
  // Ring order after wrap: the two retained windows are the newest two.
  std::vector<std::int64_t> windows;
  for (const auto& p : predictor.history()) windows.push_back(p.window_index);
  std::sort(windows.begin(), windows.end());
  EXPECT_EQ(windows, (std::vector<std::int64_t>{2, 3}));

  OnlinePredictorConfig zero;
  zero.history_capacity = 0;
  EXPECT_THROW(OnlinePredictor(cluster, server, cmon, smon, nullptr, zero),
               std::invalid_argument);
}

TEST(TrainingServer, LoadRejectsFeatureWidthMismatchNamingBothWidths) {
  // Deployment guard: a bundle whose per-server width disagrees with the
  // serving schema (e.g. a 40-wide fault-features model against the
  // 37-wide healthy layout) must throw a diagnostic naming both widths and
  // leave the currently deployed model untouched.
  const monitor::Dataset ds = tiny_training_set(9);
  TrainingServerConfig cfg;
  cfg.n_classes = 2;
  cfg.train.max_epochs = 5;
  TrainingServer server(cfg);
  server.fit(ds);
  const int model_dim = server.net().config().per_server_dim;
  std::stringstream ss;
  server.save(ss);
  const std::string bundle = ss.str();

  TrainingServer deployed(TrainingServerConfig{});
  {
    std::stringstream ok(bundle);
    deployed.load(ok, model_dim);  // matching width: accepted
  }
  const auto before = deployed.net().snapshot();
  std::stringstream mismatched(bundle);
  try {
    deployed.load(mismatched, model_dim + 3);
    FAIL() << "width mismatch must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(model_dim)), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(model_dim + 3)), std::string::npos) << msg;
  }
  EXPECT_EQ(deployed.net().snapshot(), before)
      << "a rejected bundle must leave the deployed model unchanged";
  EXPECT_NO_THROW(deployed.validate_feature_width(0));
  EXPECT_THROW(deployed.validate_feature_width(model_dim + 1), std::runtime_error);
}

TEST(Report, TextTableAlignsColumns) {
  TextTable t;
  t.add_row({"a", "bbbb"});
  t.add_row({"cccc", "d"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);  // header rule
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Report, FmtFormatsPrecision) {
  EXPECT_EQ(fmt(2.71828, 2), "2.72");
  EXPECT_EQ(fmt(40.9234, 3), "40.923");
  EXPECT_EQ(fmt_rate(1536.0 * 1024), "1.5 MiB/s");
}

}  // namespace
}  // namespace qif::core
