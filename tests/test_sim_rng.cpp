// Unit and property tests for the deterministic RNG streams.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qif/sim/rng.hpp"

namespace qif::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DeriveSeedDependsOnLabel) {
  const auto a = Rng::derive_seed(7, "ost0");
  const auto b = Rng::derive_seed(7, "ost1");
  const auto c = Rng::derive_seed(8, "ost0");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, Rng::derive_seed(7, "ost0"));  // stable
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng r(4);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform(-2.0, 5.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
  EXPECT_LT(lo, -1.5);
  EXPECT_GT(hi, 4.5);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.25);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng r(6);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(Rng, ChanceProbability) {
  Rng r(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

struct IntRange {
  std::int64_t lo;
  std::int64_t hi;
};

class UniformIntTest : public ::testing::TestWithParam<IntRange> {};

TEST_P(UniformIntTest, StaysInClosedRangeAndHitsEndpoints) {
  const auto [lo, hi] = GetParam();
  Rng r(static_cast<std::uint64_t>(lo * 31 + hi));
  bool hit_lo = false, hit_hi = false;
  const int draws = (hi - lo) < 50 ? 20000 : 100000;
  for (int i = 0; i < draws; ++i) {
    const std::int64_t v = r.uniform_int(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    hit_lo = hit_lo || v == lo;
    hit_hi = hit_hi || v == hi;
  }
  if (hi - lo < 1000) {
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntTest,
                         ::testing::Values(IntRange{0, 0}, IntRange{0, 1},
                                           IntRange{-5, 5}, IntRange{0, 6},
                                           IntRange{100, 107},
                                           IntRange{0, 1'000'000'000}));

TEST(Rng, UniformIntUnbiasedSmallRange) {
  Rng r(9);
  std::vector<int> counts(6, 0);
  const int n = 600000;
  for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(r.uniform_int(0, 5))] += 1;
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 6.0, n / 6.0 * 0.03);
  }
}

}  // namespace
}  // namespace qif::sim
