// Tests for the workload generators, the program executor, and the job
// drivers.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "qif/pfs/cluster.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/workloads/dlio.hpp"
#include "qif/workloads/driver.hpp"
#include "qif/workloads/ior.hpp"
#include "qif/workloads/mdtest.hpp"
#include "qif/workloads/proxies.hpp"
#include "qif/workloads/registry.hpp"

namespace qif::workloads {
namespace {

TEST(Registry, KnowsAllCanonicalWorkloads) {
  EXPECT_EQ(io500_tasks().size(), 7u);
  EXPECT_EQ(known_workloads().size(), 13u);
  for (const auto& name : known_workloads()) {
    EXPECT_TRUE(is_known_workload(name)) << name;
    const RankProgram prog = build_named_program(name, 0, 4, 0, 1);
    EXPECT_FALSE(prog.body.empty()) << name;
  }
  EXPECT_FALSE(is_known_workload("nope"));
  EXPECT_THROW(build_named_program("nope", 0, 1, 0, 1), std::invalid_argument);
}

TEST(Registry, UserBuildersPlugIntoTheFactory) {
  register_workload("test-custom", [](const std::string&, const WorkloadContext& ctx) {
    RankProgram p;
    OpSpec think;
    think.kind = OpSpec::Kind::kThink;
    think.think = ctx.rank + 1;
    p.body.push_back(think);
    return p;
  });
  EXPECT_TRUE(is_known_workload("test-custom"));
  const auto prog = build_named_program("test-custom", 2, 4, 0, 1);
  ASSERT_EQ(prog.body.size(), 1u);
  EXPECT_EQ(prog.body.front().think, 3);

  register_workload_prefix("test-param", "ARG",
                           [](const std::string& arg, const WorkloadContext&) {
                             RankProgram p;
                             OpSpec stat;
                             stat.kind = OpSpec::Kind::kStat;
                             stat.path = "/" + arg;
                             p.body.push_back(stat);
                             return p;
                           });
  EXPECT_TRUE(is_known_workload("test-param:xyz"));
  const auto parameterized = build_named_program("test-param:xyz", 0, 1, 0, 1);
  ASSERT_EQ(parameterized.body.size(), 1u);
  EXPECT_EQ(parameterized.body.front().path, "/xyz");
}

TEST(Registry, UnknownNameErrorListsCanonicalAndParameterizedForms) {
  const std::string msg = workload_name_error("bogus");
  EXPECT_NE(msg.find("unknown workload: 'bogus'"), std::string::npos) << msg;
  for (const auto& name : known_workloads()) {
    EXPECT_NE(msg.find(name), std::string::npos) << msg;
  }
  EXPECT_NE(msg.find("trace:FILE"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ckpt:SIZE,BW,MTTI"), std::string::npos) << msg;
  EXPECT_NE(msg.find("qwp:FILE"), std::string::npos) << msg;
}

TEST(Registry, ScaleMultipliesBodyOps) {
  const auto small = build_named_program("ior-easy-write", 0, 4, 0, 1, 0.5);
  const auto big = build_named_program("ior-easy-write", 0, 4, 0, 1, 2.0);
  EXPECT_GT(big.body.size(), 2 * small.body.size());
}

TEST(Ior, EasyIsFilePerProcessSequential) {
  IorConfig cfg;
  cfg.hard = false;
  cfg.write = true;
  cfg.n_transfers = 4;
  const auto p0 = build_ior_program(cfg, 0, 4, 0);
  const auto p1 = build_ior_program(cfg, 1, 4, 0);
  // Distinct per-rank paths.
  EXPECT_NE(p0.body.front().path, p1.body.front().path);
  // Sequential offsets.
  std::int64_t expect = 0;
  for (const auto& op : p0.body) {
    if (op.kind != OpSpec::Kind::kWrite) continue;
    EXPECT_EQ(op.offset, expect);
    expect += op.len;
  }
}

TEST(Ior, HardIsSharedFileStrided47008) {
  IorConfig cfg;
  cfg.hard = true;
  cfg.write = true;
  cfg.n_transfers = 3;
  const auto p0 = build_ior_program(cfg, 0, 4, 7);
  const auto p2 = build_ior_program(cfg, 2, 4, 7);
  EXPECT_EQ(p0.body.front().path, p2.body.front().path);  // shared file
  std::vector<std::int64_t> offsets;
  for (const auto& op : p2.body) {
    if (op.kind == OpSpec::Kind::kWrite) {
      EXPECT_EQ(op.len, 47008);
      offsets.push_back(op.offset);
    }
  }
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0], 2 * 47008);
  EXPECT_EQ(offsets[1], (1 * 4 + 2) * 47008);  // segment stride
}

TEST(Ior, ReadProgramsCreateInPrologue) {
  IorConfig cfg;
  cfg.write = false;
  const auto prog = build_ior_program(cfg, 0, 2, 0);
  ASSERT_FALSE(prog.prologue.empty());
  EXPECT_EQ(prog.prologue.front().kind, OpSpec::Kind::kCreate);
  for (const auto& op : prog.body) EXPECT_NE(op.kind, OpSpec::Kind::kWrite);
}

TEST(Mdtest, EasyUsesPrivateDirsAndEmptyFiles) {
  MdtestConfig cfg;
  cfg.hard = false;
  cfg.n_files = 5;
  const auto p0 = build_mdtest_program(cfg, 0, 0);
  const auto p1 = build_mdtest_program(cfg, 1, 0);
  EXPECT_NE(p0.prologue.front().path, p1.prologue.front().path);  // own dirs
  for (const auto& op : p0.body) EXPECT_NE(op.kind, OpSpec::Kind::kWrite);
}

TEST(Mdtest, HardUsesSharedDirWith3901ByteBodies) {
  MdtestConfig cfg;
  cfg.hard = true;
  cfg.n_files = 5;
  const auto p0 = build_mdtest_program(cfg, 0, 0);
  const auto p1 = build_mdtest_program(cfg, 1, 0);
  EXPECT_EQ(p0.prologue.front().path, p1.prologue.front().path);  // shared dir
  int writes = 0;
  for (const auto& op : p0.body) {
    if (op.kind == OpSpec::Kind::kWrite) {
      EXPECT_EQ(op.len, 3901);
      ++writes;
    }
  }
  EXPECT_EQ(writes, 5);
}

TEST(Mdtest, ReadPhaseStatsOpensReadsCloses) {
  MdtestConfig cfg;
  cfg.hard = true;
  cfg.phase = MdtestConfig::Phase::kRead;
  cfg.n_files = 3;
  const auto prog = build_mdtest_program(cfg, 0, 0);
  int stats = 0, reads = 0, creates_in_body = 0;
  for (const auto& op : prog.body) {
    if (op.kind == OpSpec::Kind::kStat) ++stats;
    if (op.kind == OpSpec::Kind::kRead) ++reads;
    if (op.kind == OpSpec::Kind::kCreate) ++creates_in_body;
  }
  EXPECT_EQ(stats, 3);
  EXPECT_EQ(reads, 3);
  EXPECT_EQ(creates_in_body, 0);  // creation happens in the prologue
  EXPECT_GE(prog.prologue.size(), 6u);
}

TEST(Dlio, DeterministicPerSeedAndRank) {
  DlioConfig cfg;
  const auto a = build_dlio_program(cfg, 0, 0, 5);
  const auto b = build_dlio_program(cfg, 0, 0, 5);
  const auto c = build_dlio_program(cfg, 1, 0, 5);
  ASSERT_EQ(a.body.size(), b.body.size());
  for (std::size_t i = 0; i < a.body.size(); ++i) {
    EXPECT_EQ(a.body[i].offset, b.body[i].offset);
    EXPECT_EQ(a.body[i].think, b.body[i].think);
  }
  // Different rank: different shuffle.
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.body.size(), c.body.size()); ++i) {
    if (a.body[i].offset != c.body[i].offset) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Dlio, BertReadsSmallerAndMoreSequentialThanUnet) {
  DlioConfig unet;
  unet.model = DlioConfig::Model::kUnet3d;
  DlioConfig bert;
  bert.model = DlioConfig::Model::kBert;
  const auto pu = build_dlio_program(unet, 0, 0, 1);
  const auto pb = build_dlio_program(bert, 0, 0, 1);
  std::int64_t unet_len = 0, bert_len = 0;
  for (const auto& op : pu.body) {
    if (op.kind == OpSpec::Kind::kRead) unet_len = op.len;
  }
  for (const auto& op : pb.body) {
    if (op.kind == OpSpec::Kind::kRead) bert_len = op.len;
  }
  EXPECT_GT(unet_len, 8 * bert_len);
}

TEST(Dlio, CheckpointsAppearAtConfiguredCadence) {
  DlioConfig cfg;
  cfg.steps = 10;
  cfg.checkpoint_every = 5;
  const auto prog = build_dlio_program(cfg, 0, 0, 1);
  int creates = 0;
  for (const auto& op : prog.body) {
    if (op.kind == OpSpec::Kind::kCreate) ++creates;
  }
  EXPECT_EQ(creates, 2);  // two checkpoints over 10 steps
}

TEST(Proxies, EnzoMixesAllOpKinds) {
  const auto prog = build_enzo_program(EnzoConfig{}, 0, 0, 3);
  std::set<OpSpec::Kind> kinds;
  for (const auto& op : prog.body) kinds.insert(op.kind);
  EXPECT_TRUE(kinds.count(OpSpec::Kind::kRead) || kinds.count(OpSpec::Kind::kOpen));
  EXPECT_TRUE(kinds.count(OpSpec::Kind::kWrite));
  EXPECT_TRUE(kinds.count(OpSpec::Kind::kStat));
  EXPECT_TRUE(kinds.count(OpSpec::Kind::kClose));
  EXPECT_TRUE(kinds.count(OpSpec::Kind::kThink));
}

TEST(Proxies, OpenPmdIsMetadataDominated) {
  const auto prog = build_openpmd_program(OpenPmdConfig{}, 0, 0, 3);
  std::int64_t bytes = 0;
  int meta_ops = 0, data_ops = 0;
  for (const auto& op : prog.body) {
    switch (op.kind) {
      case OpSpec::Kind::kRead:
      case OpSpec::Kind::kWrite:
        ++data_ops;
        bytes += op.len;
        break;
      case OpSpec::Kind::kThink:
        break;
      default:
        ++meta_ops;
    }
  }
  EXPECT_GT(meta_ops, data_ops / 2);
  EXPECT_LT(bytes, 2 << 20);  // kilobyte-scale payloads only
}

TEST(Proxies, AmrexIsWriteHeavy) {
  AmrexConfig cfg;
  cfg.plotfiles = 2;
  cfg.bytes_per_rank = 16 << 20;
  const auto prog = build_amrex_program(cfg, 0, 0, 3);
  std::int64_t written = 0;
  for (const auto& op : prog.body) {
    if (op.kind == OpSpec::Kind::kWrite) written += op.len;
  }
  EXPECT_EQ(written, 2 * (16 << 20));
}

struct ExecutorFixture : ::testing::Test {
  sim::Simulation s;
  pfs::ClusterConfig cfg;
  std::unique_ptr<pfs::Cluster> cluster;
  void SetUp() override {
    cfg.seed = 13;
    cluster = std::make_unique<pfs::Cluster>(s, cfg);
  }
};

TEST_F(ExecutorFixture, RunsProgramToCompletion) {
  pfs::PfsClient& client = cluster->make_client(0, 0, 0);
  RankProgram prog;
  OpSpec create;
  create.kind = OpSpec::Kind::kCreate;
  create.path = "/e/f";
  prog.body.push_back(create);
  OpSpec write;
  write.kind = OpSpec::Kind::kWrite;
  write.len = 1 << 20;
  prog.body.push_back(write);
  OpSpec close;
  close.kind = OpSpec::Kind::kClose;
  prog.body.push_back(close);

  bool finished = false;
  ExecOptions opts;
  opts.on_finish = [&] { finished = true; };
  ProgramExecutor exec(client, prog, opts);
  exec.start();
  s.run_all();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(exec.finished());
  EXPECT_EQ(exec.ops_executed(), 3u);
  EXPECT_EQ(exec.body_iterations(), 1u);
}

TEST_F(ExecutorFixture, LoopModeStopsAtHorizon) {
  pfs::PfsClient& client = cluster->make_client(0, 0, 0);
  RankProgram prog;
  OpSpec think;
  think.kind = OpSpec::Kind::kThink;
  think.think = 100 * sim::kMillisecond;
  prog.body.push_back(think);

  ExecOptions opts;
  opts.loop = true;
  opts.stop_at = 2 * sim::kSecond;
  ProgramExecutor exec(client, prog, opts);
  exec.start();
  s.run_until(10 * sim::kSecond);
  EXPECT_TRUE(exec.finished());
  EXPECT_NEAR(static_cast<double>(exec.body_iterations()), 20.0, 2.0);
}

TEST_F(ExecutorFixture, ThinkOpsClampToTheStopHorizon) {
  // Replayed traces carry multi-second think gaps; a think that straddles
  // stop_at must be clamped so the executor finishes AT the horizon rather
  // than overshooting by up to a full gap.
  pfs::PfsClient& client = cluster->make_client(0, 0, 0);
  RankProgram prog;
  OpSpec think;
  think.kind = OpSpec::Kind::kThink;
  think.think = 5 * sim::kSecond;
  prog.body.push_back(think);

  ExecOptions opts;
  opts.loop = true;
  opts.stop_at = 2 * sim::kSecond;
  sim::SimTime finished_at = -1;
  opts.on_finish = [&] { finished_at = s.now(); };
  ProgramExecutor exec(client, prog, opts);
  exec.start();
  s.run_until(10 * sim::kSecond);
  EXPECT_TRUE(exec.finished());
  EXPECT_EQ(finished_at, 2 * sim::kSecond);
}

TEST_F(ExecutorFixture, PrologueRunsOnceAcrossLoops) {
  pfs::PfsClient& client = cluster->make_client(0, 0, 0);
  RankProgram prog;
  OpSpec mkdir;
  mkdir.kind = OpSpec::Kind::kMkdir;
  mkdir.path = "/once";
  prog.prologue.push_back(mkdir);
  OpSpec stat;
  stat.kind = OpSpec::Kind::kStat;
  stat.path = "/once";
  prog.body.push_back(stat);

  ExecOptions opts;
  opts.loop = true;
  opts.stop_at = sim::kSecond;
  ProgramExecutor exec(client, prog, opts);
  exec.start();
  s.run_until(2 * sim::kSecond);
  int mkdirs = 0, stats = 0;
  for (const auto& r : cluster->trace_log().records()) {
    if (r.type == pfs::OpType::kMkdir) ++mkdirs;
    if (r.type == pfs::OpType::kStat) ++stats;
  }
  EXPECT_EQ(mkdirs, 1);
  EXPECT_GT(stats, 10);
}

TEST_F(ExecutorFixture, JobInstanceCompletesAllRanks) {
  JobSpec spec;
  spec.workload = "mdt-easy-write";
  spec.nodes = {0, 1};
  spec.procs_per_node = 2;
  spec.job = 0;
  spec.seed = 1;
  spec.scale = 0.1;
  JobInstance job(*cluster, spec, /*loop=*/false);
  bool done = false;
  job.start([&] { done = true; });
  s.run_all();
  EXPECT_TRUE(done);
  EXPECT_TRUE(job.done());
  EXPECT_GT(job.completion_time(), 0);
  // All 4 ranks traced.
  std::set<pfs::Rank> ranks;
  for (const auto& r : cluster->trace_log().records()) ranks.insert(r.rank);
  EXPECT_EQ(ranks.size(), 4u);
}

TEST_F(ExecutorFixture, InterferenceDriverSpreadsInstancesOverNodes) {
  InterferenceDriver driver(*cluster, "mdt-easy-write", {2, 3, 4}, 6,
                            500 * sim::kMillisecond, 3, /*job_base=*/10, 0.1);
  driver.start();
  s.run_until(sim::kSecond);
  ASSERT_EQ(driver.instances().size(), 6u);
  std::set<std::int32_t> jobs;
  for (const auto& r : cluster->trace_log().records()) jobs.insert(r.job);
  EXPECT_GE(jobs.size(), 6u);
  // Node placement round-robins over {2,3,4}.
  EXPECT_EQ(driver.instances()[0]->spec().nodes[0], 2);
  EXPECT_EQ(driver.instances()[1]->spec().nodes[0], 3);
  EXPECT_EQ(driver.instances()[3]->spec().nodes[0], 2);
}

TEST_F(ExecutorFixture, Io500SuitePhaseRangesAlignWithTrace) {
  // phase_sweep buckets matched ops into phases via these ranges; they
  // must agree with the op stream an actual suite run produces.
  JobSpec spec;
  spec.workload = "io500-suite";
  spec.nodes = {0};
  spec.procs_per_node = 2;
  spec.seed = 3;
  spec.scale = 0.05;
  JobInstance job(*cluster, spec, /*loop=*/false);
  job.start(nullptr);
  s.run_all();
  ASSERT_TRUE(job.done());

  const auto ranges = io500_suite_phase_ranges(spec.n_ranks(), spec.seed, spec.scale);
  ASSERT_EQ(ranges.size(), 7u);
  // Ranges tile [0, total) without gaps.
  std::int64_t cursor = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, cursor);
    EXPECT_LT(lo, hi);
    cursor = hi;
  }
  // Every rank issued exactly `cursor` ops, and the data ops inside each
  // phase have that phase's direction (read phases contain no writes in
  // their own range and vice versa for pure-metadata phases).
  const auto sorted = cluster->trace_log().sorted_for_job(0);
  std::map<pfs::Rank, std::int64_t> per_rank;
  for (const auto& r : sorted) per_rank[r.rank] = r.op_index + 1;
  for (const auto& [rank, count] : per_rank) EXPECT_EQ(count, cursor) << rank;

  const auto& names = io500_tasks();
  for (const auto& r : sorted) {
    int phase = -1;
    for (std::size_t pi = 0; pi < ranges.size(); ++pi) {
      if (r.op_index >= ranges[pi].first && r.op_index < ranges[pi].second) {
        phase = static_cast<int>(pi);
      }
    }
    ASSERT_GE(phase, 0);
    const std::string& name = names[static_cast<std::size_t>(phase)];
    if (r.type == pfs::OpType::kWrite && name.find("read") != std::string::npos &&
        name.rfind("ior", 0) == 0) {
      ADD_FAILURE() << "write op inside read phase " << name;
    }
    if (r.type == pfs::OpType::kRead && name.find("write") != std::string::npos) {
      ADD_FAILURE() << "read op inside write phase " << name;
    }
  }
}

TEST_F(ExecutorFixture, SameSeedSameOpSequence) {
  // The determinism contract the trace matcher relies on.
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim;
    pfs::ClusterConfig cc;
    cc.seed = 99;  // cluster seed fixed; workload seed varies
    pfs::Cluster cl(sim, cc);
    JobSpec spec;
    spec.workload = "dlio-unet3d";
    spec.nodes = {0};
    spec.procs_per_node = 2;
    spec.seed = seed;
    spec.scale = 0.2;
    JobInstance job(cl, spec, false);
    job.start(nullptr);
    sim.run_all();
    std::vector<std::tuple<pfs::Rank, std::int64_t, std::int64_t>> ops;
    for (const auto& r : cl.trace_log().records()) {
      ops.emplace_back(r.rank, r.op_index, r.bytes);
    }
    return ops;
  };
  EXPECT_EQ(run(5), run(5));
}

}  // namespace
}  // namespace qif::workloads
