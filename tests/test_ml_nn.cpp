// Tests for the network building blocks: dense layers (with a finite-
// difference gradient check), ReLU, softmax cross-entropy, and Adam.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "qif/ml/nn.hpp"

namespace qif::ml {
namespace {

TEST(Dense, ForwardComputesXWPlusB) {
  sim::Rng rng(1);
  Dense layer(2, 2, rng);
  // Overwrite with known weights via save/load round trip is awkward;
  // instead verify linearity: f(2x) - f(x) == f(x) - f(0).
  Matrix x(1, 2), x2(1, 2), zero(1, 2);
  x.at(0, 0) = 1.0;
  x.at(0, 1) = -2.0;
  x2.at(0, 0) = 2.0;
  x2.at(0, 1) = -4.0;
  const Matrix fx = layer.forward_inference(x);
  const Matrix fx2 = layer.forward_inference(x2);
  const Matrix f0 = layer.forward_inference(zero);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(fx2.at(0, j) - fx.at(0, j), fx.at(0, j) - f0.at(0, j), 1e-12);
  }
}

TEST(Dense, GradientCheckAgainstFiniteDifferences) {
  sim::Rng rng(2);
  Dense layer(3, 2, rng);
  Matrix x(4, 3);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  std::vector<int> y = {0, 1, 0, 1};

  // Analytic gradient of the scalar loss w.r.t. the input.
  Matrix logits = layer.forward(x);
  auto [loss, dlogits] = SoftmaxXent::loss_and_grad(logits, y, {});
  const Matrix dx = layer.backward(dlogits);

  // Numerical gradient.
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Matrix xp = x, xm = x;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    const auto lp =
        SoftmaxXent::loss_and_grad(layer.forward_inference(xp), y, {}).first;
    const auto lm =
        SoftmaxXent::loss_and_grad(layer.forward_inference(xm), y, {}).first;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx.data()[i], numeric, 1e-5) << "input grad " << i;
  }
}

TEST(Dense, AdamStepReducesLoss) {
  sim::Rng rng(3);
  Dense layer(4, 3, rng);
  Matrix x(8, 4);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  std::vector<int> y;
  for (int i = 0; i < 8; ++i) y.push_back(i % 3);

  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 1; step <= 200; ++step) {
    const Matrix logits = layer.forward(x);
    auto [loss, dlogits] = SoftmaxXent::loss_and_grad(logits, y, {});
    if (step == 1) first_loss = loss;
    last_loss = loss;
    layer.backward(dlogits);
    layer.step(AdamParams{}, step);
  }
  EXPECT_LT(last_loss, first_loss * 0.8);
}

TEST(Dense, SaveLoadRoundTrip) {
  sim::Rng rng(4);
  Dense layer(5, 3, rng);
  Matrix x(2, 5);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  const Matrix before = layer.forward_inference(x);
  std::stringstream ss;
  layer.save(ss);
  Dense loaded;
  loaded.load(ss);
  const Matrix after = loaded.forward_inference(x);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after.data()[i], before.data()[i], 1e-9);
  }
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Matrix x(1, 4);
  x.data() = {-1.0, 0.0, 2.0, -3.5};
  const Matrix y = relu.forward(x);
  EXPECT_DOUBLE_EQ(y.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(y.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(y.at(0, 3), 0.0);
}

TEST(ReLU, BackwardMasksByInputSign) {
  ReLU relu;
  Matrix x(1, 3);
  x.data() = {-1.0, 1.0, 0.0};
  relu.forward(x);
  Matrix dy(1, 3);
  dy.data() = {5.0, 5.0, 5.0};
  const Matrix dx = relu.backward(dy);
  EXPECT_DOUBLE_EQ(dx.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dx.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(dx.at(0, 2), 0.0);
}

TEST(SoftmaxXent, SoftmaxRowsSumToOne) {
  Matrix logits(3, 4);
  sim::Rng rng(5);
  for (auto& v : logits.data()) v = rng.normal(0, 3);
  const Matrix p = SoftmaxXent::softmax(logits);
  for (std::size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_GT(p.at(i, j), 0.0);
      sum += p.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(SoftmaxXent, SoftmaxNumericallyStableForHugeLogits) {
  Matrix logits(1, 2);
  logits.data() = {1000.0, 999.0};
  const Matrix p = SoftmaxXent::softmax(logits);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0, 1e-12);
  EXPECT_GT(p.at(0, 0), p.at(0, 1));
}

TEST(SoftmaxXent, UniformLogitsGiveLogKLoss) {
  Matrix logits(2, 4);  // all zeros -> uniform distribution
  auto [loss, grad] = SoftmaxXent::loss_and_grad(logits, {1, 2}, {});
  EXPECT_NEAR(loss, std::log(4.0), 1e-9);
  // Gradient: p - onehot, normalized by batch.
  EXPECT_NEAR(grad.at(0, 1), (0.25 - 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(grad.at(0, 0), 0.25 / 2.0, 1e-12);
}

TEST(SoftmaxXent, ClassWeightsScaleContributions) {
  Matrix logits(2, 2);  // uniform
  const std::vector<double> w = {1.0, 3.0};
  auto [loss_weighted, g] = SoftmaxXent::loss_and_grad(logits, {0, 1}, w);
  auto [loss_plain, g2] = SoftmaxXent::loss_and_grad(logits, {0, 1}, {});
  // Both rows have loss log(2); weighted average = (1*l + 3*l)/4 = l.
  EXPECT_NEAR(loss_weighted, loss_plain, 1e-12);
  // But the class-1 row's gradient carries 3x the weight (before norm).
  EXPECT_NEAR(std::abs(g.at(1, 1)) / std::abs(g2.at(1, 1)), 3.0 / 2.0, 1e-9);
}

TEST(SoftmaxXent, PerfectPredictionNearZeroLoss) {
  Matrix logits(1, 2);
  logits.data() = {20.0, -20.0};
  auto [loss, grad] = SoftmaxXent::loss_and_grad(logits, {0}, {});
  EXPECT_LT(loss, 1e-6);
  EXPECT_LT(std::abs(grad.at(0, 0)), 1e-6);
}

}  // namespace
}  // namespace qif::ml
