// Tests for the trace pipeline: records, logs, baseline/interference
// matching, and degradation labelling.
#include <gtest/gtest.h>

#include "qif/trace/labeler.hpp"
#include "qif/trace/matcher.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::trace {
namespace {

OpRecord make_op(std::int32_t job, pfs::Rank rank, std::int64_t index, sim::SimTime start,
                 sim::SimDuration dur, pfs::OpType type = pfs::OpType::kRead,
                 std::int64_t bytes = 4096) {
  OpRecord r;
  r.job = job;
  r.rank = rank;
  r.op_index = index;
  r.type = type;
  r.bytes = bytes;
  r.start = start;
  r.end = start + dur;
  return r;
}

TEST(TraceLog, RecordsAndObserver) {
  TraceLog log;
  int observed = 0;
  log.set_observer([&](const OpRecord&) { ++observed; });
  log.record(make_op(0, 0, 0, 0, 10));
  log.record(make_op(0, 0, 1, 10, 10));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(observed, 2);
}

TEST(TraceLog, SortedForJobFiltersAndOrders) {
  TraceLog log;
  log.record(make_op(1, 0, 5, 0, 1));
  log.record(make_op(0, 1, 0, 0, 1));
  log.record(make_op(0, 0, 1, 0, 1));
  log.record(make_op(0, 0, 0, 0, 1));
  const auto sorted = log.sorted_for_job(0);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].rank, 0);
  EXPECT_EQ(sorted[0].op_index, 0);
  EXPECT_EQ(sorted[1].op_index, 1);
  EXPECT_EQ(sorted[2].rank, 1);
}

TEST(TraceMatcher, PairsByRankAndIndex) {
  TraceLog base, noisy;
  for (int i = 0; i < 5; ++i) {
    base.record(make_op(0, 0, i, i * 100, 10));
    noisy.record(make_op(0, 0, i, i * 300, 30));
  }
  MatchStats stats;
  const auto matched = TraceMatcher::match(base, noisy, 0, &stats);
  ASSERT_EQ(matched.size(), 5u);
  EXPECT_EQ(stats.matched, 5u);
  EXPECT_EQ(stats.unmatched_base, 0u);
  for (const auto& m : matched) {
    EXPECT_EQ(m.base.op_index, m.interference.op_index);
    EXPECT_EQ(m.interference.duration(), 3 * m.base.duration());
  }
}

TEST(TraceMatcher, TruncatedInterferenceRunCountsUnmatched) {
  TraceLog base, noisy;
  for (int i = 0; i < 10; ++i) base.record(make_op(0, 0, i, i * 100, 10));
  for (int i = 0; i < 4; ++i) noisy.record(make_op(0, 0, i, i * 100, 10));
  MatchStats stats;
  const auto matched = TraceMatcher::match(base, noisy, 0, &stats);
  EXPECT_EQ(matched.size(), 4u);
  EXPECT_EQ(stats.unmatched_base, 6u);
  EXPECT_EQ(stats.unmatched_interf, 0u);
}

TEST(TraceMatcher, TypeMismatchRejected) {
  TraceLog base, noisy;
  base.record(make_op(0, 0, 0, 0, 10, pfs::OpType::kRead));
  noisy.record(make_op(0, 0, 0, 0, 10, pfs::OpType::kWrite));
  MatchStats stats;
  const auto matched = TraceMatcher::match(base, noisy, 0, &stats);
  EXPECT_TRUE(matched.empty());
  EXPECT_EQ(stats.mismatched, 1u);
}

TEST(TraceMatcher, IgnoresOtherJobs) {
  TraceLog base, noisy;
  base.record(make_op(0, 0, 0, 0, 10));
  noisy.record(make_op(0, 0, 0, 0, 10));
  noisy.record(make_op(7, 0, 0, 0, 10));  // interference job's own ops
  EXPECT_EQ(TraceMatcher::match(base, noisy, 0).size(), 1u);
}

TEST(TraceMatcher, MultiRankMergePath) {
  TraceLog base, noisy;
  for (pfs::Rank r = 0; r < 4; ++r) {
    for (int i = 0; i < 3; ++i) {
      base.record(make_op(0, r, i, i, 5));
      if (!(r == 2 && i == 1)) noisy.record(make_op(0, r, i, i, 7));
    }
  }
  MatchStats stats;
  const auto matched = TraceMatcher::match(base, noisy, 0, &stats);
  EXPECT_EQ(matched.size(), 11u);
  EXPECT_EQ(stats.unmatched_base, 1u);
}

TEST(Labeler, ComputesAverageRatioPerWindow) {
  LabelerConfig cfg;
  cfg.window = 100;
  Labeler labeler(cfg);
  std::vector<MatchedOp> matched;
  // Window 0: ratios 2 and 4 -> level 3.0.
  matched.push_back({make_op(0, 0, 0, 0, 10), make_op(0, 0, 0, 10, 20)});
  matched.push_back({make_op(0, 0, 1, 20, 10), make_op(0, 0, 1, 50, 40)});
  // Window 2: ratio 1.
  matched.push_back({make_op(0, 0, 2, 40, 10), make_op(0, 0, 2, 250, 10)});
  const auto labels = labeler.label(matched);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].window_index, 0);
  EXPECT_DOUBLE_EQ(labels[0].degradation, 3.0);
  EXPECT_EQ(labels[0].label, 1);  // >= 2x
  EXPECT_EQ(labels[0].n_ops, 2u);
  EXPECT_EQ(labels[1].window_index, 2);
  EXPECT_DOUBLE_EQ(labels[1].degradation, 1.0);
  EXPECT_EQ(labels[1].label, 0);
}

TEST(Labeler, WindowAssignmentUsesInterferenceStartTime) {
  LabelerConfig cfg;
  cfg.window = 100;
  Labeler labeler(cfg);
  // Base op at t=0 but the interference run executed it at t=550.
  std::vector<MatchedOp> matched = {
      {make_op(0, 0, 0, 0, 10), make_op(0, 0, 0, 550, 10)}};
  const auto labels = labeler.label(matched);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].window_index, 5);
}

TEST(Labeler, MinOpsFilterDropsSparseWindows) {
  LabelerConfig cfg;
  cfg.window = 100;
  cfg.min_ops_per_window = 2;
  Labeler labeler(cfg);
  std::vector<MatchedOp> matched = {
      {make_op(0, 0, 0, 0, 10), make_op(0, 0, 0, 0, 10)},
      {make_op(0, 0, 1, 10, 10), make_op(0, 0, 1, 10, 10)},
      {make_op(0, 0, 2, 20, 10), make_op(0, 0, 2, 150, 10)},  // lone op
  };
  const auto labels = labeler.label(matched);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].window_index, 0);
}

TEST(Labeler, ZeroBaselineDurationClamped) {
  Labeler labeler(LabelerConfig{});
  std::vector<MatchedOp> matched = {
      {make_op(0, 0, 0, 0, 0), make_op(0, 0, 0, 0, 100)}};
  const auto labels = labeler.label(matched);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_DOUBLE_EQ(labels[0].degradation, 100.0);  // clamp base to 1 tick
}

struct BinCase {
  std::vector<double> thresholds;
  double degradation;
  int expected;
};

class LabelerBinTest : public ::testing::TestWithParam<BinCase> {};

TEST_P(LabelerBinTest, BinOfMatchesThresholds) {
  const auto& [thresholds, degradation, expected] = GetParam();
  LabelerConfig cfg;
  cfg.bin_thresholds = thresholds;
  Labeler labeler(cfg);
  EXPECT_EQ(labeler.bin_of(degradation), expected);
  EXPECT_EQ(labeler.num_classes(), static_cast<int>(thresholds.size()) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Bins, LabelerBinTest,
    ::testing::Values(BinCase{{2.0}, 1.0, 0}, BinCase{{2.0}, 1.99, 0},
                      BinCase{{2.0}, 2.0, 1}, BinCase{{2.0}, 50.0, 1},
                      BinCase{{2.0, 5.0}, 1.2, 0}, BinCase{{2.0, 5.0}, 3.0, 1},
                      BinCase{{2.0, 5.0}, 5.0, 2}, BinCase{{2.0, 5.0}, 41.0, 2},
                      BinCase{{1.5, 3.0, 10.0}, 9.99, 2},
                      BinCase{{1.5, 3.0, 10.0}, 10.0, 3}));

}  // namespace
}  // namespace qif::trace
