// Property tests for the pooled 4-ary-heap event engine: random
// schedule/cancel/run workloads are mirrored into a naive reference
// scheduler (a plain vector scanned for the (when, seq) minimum), and the
// two must agree on the exact firing order and pending count at every
// step, with the engine's structural invariants holding throughout.
//
// The reference is deliberately simple enough to be obviously correct:
// that is the whole point — any divergence is an engine bug, including
// FIFO tie-break violations among simultaneous events, mis-placed heap
// back-pointers after O(log n) cancellation, and slot-reuse hazards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "qif/sim/rng.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::sim {
namespace {

/// Naive but obviously-correct scheduler: O(n) min-scan per pop.
class ReferenceScheduler {
 public:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    int token;
    SimDuration chain_delay;  // > 0: firing schedules a follow-up event
  };

  std::uint64_t schedule(SimTime when, int token, SimDuration chain_delay = 0) {
    pending_.push_back({when, ++next_seq_, token, chain_delay});
    return pending_.back().seq;
  }

  /// Mirrors Simulation::cancel: cancelling a fired or already-cancelled
  /// event is a no-op.
  void cancel(std::uint64_t seq) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->seq == seq) {
        pending_.erase(it);
        return;
      }
    }
  }

  void run_until(SimTime until, std::vector<int>& log) {
    for (;;) {
      std::size_t best = pending_.size();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].when > until) continue;
        if (best == pending_.size() || pending_[i].when < pending_[best].when ||
            (pending_[i].when == pending_[best].when &&
             pending_[i].seq < pending_[best].seq)) {
          best = i;
        }
      }
      if (best == pending_.size()) return;
      const Event ev = pending_[best];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
      log.push_back(ev.token);
      if (ev.chain_delay > 0) {
        schedule(ev.when + ev.chain_delay, ev.token + 1000000, 0);
      }
    }
  }

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  std::uint64_t next_seq_ = 0;
  std::vector<Event> pending_;
};

/// One randomized round: ~`ops` operations driven by `seed`, engine vs
/// reference compared after every operation.
void run_round(std::uint64_t seed, int ops) {
  Simulation sim;
  ReferenceScheduler ref;
  Rng rng(seed);
  std::vector<int> sim_log;
  std::vector<int> ref_log;
  // Parallel handle arrays: operation k scheduled (real id, ref seq).
  std::vector<EventId> sim_handles;
  std::vector<std::uint64_t> ref_handles;
  SimTime cursor = 0;  // the last run_until horizon; schedules are >= this
  int next_token = 0;

  for (int op = 0; op < ops; ++op) {
    const double roll = rng.next_double();
    if (roll < 0.60 || sim_handles.empty()) {
      // Schedule.  Coarse time quantization forces plenty of (when, seq)
      // ties, exercising the FIFO tie-break.
      const SimTime when = cursor + rng.uniform_int(0, 40) * 100;
      const bool chain = rng.chance(0.25);
      const SimDuration chain_delay = chain ? rng.uniform_int(1, 20) * 100 : 0;
      const int token = next_token++;
      if (chain_delay > 0) {
        sim_handles.push_back(sim.schedule_at(when, [&sim, &sim_log, token, chain_delay] {
          sim_log.push_back(token);
          sim.schedule_after(chain_delay,
                             [&sim_log, token] { sim_log.push_back(token + 1000000); });
        }));
      } else {
        sim_handles.push_back(
            sim.schedule_at(when, [&sim_log, token] { sim_log.push_back(token); }));
      }
      ref_handles.push_back(ref.schedule(when, token, chain_delay));
    } else if (roll < 0.80) {
      // Cancel a random handle — possibly one that already fired or was
      // already cancelled (both engines treat that as a no-op).
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sim_handles.size()) - 1));
      sim.cancel(sim_handles[pick]);
      ref.cancel(ref_handles[pick]);
      if (rng.chance(0.2)) {  // double-cancel: must stay a no-op
        sim.cancel(sim_handles[pick]);
        ref.cancel(ref_handles[pick]);
      }
    } else {
      // Advance the clock.
      cursor += rng.uniform_int(0, 1500);
      const std::uint64_t ran = sim.run_until(cursor);
      ref.run_until(cursor, ref_log);
      ASSERT_EQ(sim_log.size(), ref_log.size()) << "after run_until(" << cursor << ")";
      EXPECT_GE(ran, 0u);
    }
    ASSERT_TRUE(sim.check_invariants()) << "op " << op << " seed " << seed;
    ASSERT_EQ(sim.pending(), ref.pending()) << "op " << op << " seed " << seed;
    ASSERT_EQ(sim_log, ref_log) << "op " << op << " seed " << seed;
  }

  // Drain both completely; the full firing history must match exactly.
  sim.run_all();
  ref.run_until(std::numeric_limits<SimTime>::max(), ref_log);
  EXPECT_TRUE(sim.check_invariants());
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(ref.pending(), 0u);
  ASSERT_EQ(sim_log, ref_log) << "seed " << seed;
}

TEST(SimProperty, RandomScheduleCancelRunMatchesReferenceScheduler) {
  for (std::uint64_t round = 0; round < 20; ++round) {
    run_round(Rng::derive_seed(0xFA17, "round" + std::to_string(round)), 300);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

TEST(SimProperty, HeavyCancellationChurnKeepsSlabBounded) {
  // Schedule/cancel churn must recycle slots instead of growing the slab:
  // the peak simultaneous pending count bounds slot_slab_size().
  Simulation sim;
  ReferenceScheduler ref;
  Rng rng(99);
  std::vector<int> sim_log;
  std::vector<int> ref_log;
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<EventId> ids;
    std::vector<std::uint64_t> seqs;
    const SimTime base = sim.now();
    for (int i = 0; i < 64; ++i) {
      const SimTime when = base + rng.uniform_int(1, 1000);
      const int token = wave * 1000 + i;
      ids.push_back(sim.schedule_at(when, [&sim_log, token] { sim_log.push_back(token); }));
      seqs.push_back(ref.schedule(when, token));
    }
    // Cancel a random half, in random order.
    for (int i = 0; i < 32; ++i) {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(0, 63));
      sim.cancel(ids[pick]);
      ref.cancel(seqs[pick]);
    }
    ASSERT_TRUE(sim.check_invariants());
    ASSERT_EQ(sim.pending(), ref.pending());
    sim.run_until(base + 1000);
    ref.run_until(base + 1000, ref_log);
    ASSERT_EQ(sim_log, ref_log) << "wave " << wave;
  }
  EXPECT_LE(sim.slot_slab_size(), 64u + 1u);
}

TEST(SimProperty, SimultaneousEventsFireInSchedulingOrder) {
  // Direct FIFO pin (the reference also checks this, but keep a readable
  // witness): N events at the same instant fire in scheduling order even
  // when interleaved with cancellations.
  Simulation sim;
  std::vector<int> log;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_at(500, [&log, i] { log.push_back(i); }));
  }
  for (int i = 0; i < 100; i += 3) sim.cancel(ids[static_cast<std::size_t>(i)]);
  ASSERT_TRUE(sim.check_invariants());
  sim.run_all();
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0) expected.push_back(i);
  }
  EXPECT_EQ(log, expected);
}

}  // namespace
}  // namespace qif::sim
