// Tests for striping layouts: offset mapping, coalescing, placement.
#include <gtest/gtest.h>

#include "qif/pfs/layout.hpp"

namespace qif::pfs {
namespace {

constexpr std::int64_t kStripe = 1 << 20;
constexpr std::int64_t kCap = 1ll << 40;

TEST(FileLayout, SingleStripeMapsContiguously) {
  FileLayout layout(1, {3}, kStripe, kCap);
  const auto extents = layout.map(0, 10 << 20);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].ost, 3);
  EXPECT_EQ(extents[0].len, 10 << 20);
  EXPECT_EQ(extents[0].disk_offset, layout.object_base(0));
}

TEST(FileLayout, RoundRobinAcrossStripes) {
  FileLayout layout(2, {0, 1, 2}, kStripe, kCap);
  const auto extents = layout.map(0, 3 * kStripe);
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0].ost, 0);
  EXPECT_EQ(extents[1].ost, 1);
  EXPECT_EQ(extents[2].ost, 2);
  for (const auto& e : extents) EXPECT_EQ(e.len, kStripe);
}

TEST(FileLayout, SecondStripeRowContinuesObjectSequentially) {
  FileLayout layout(3, {0, 1}, kStripe, kCap);
  const auto row0 = layout.map(0, kStripe);
  const auto row1 = layout.map(2 * kStripe, kStripe);  // second row, ost 0
  ASSERT_EQ(row0.size(), 1u);
  ASSERT_EQ(row1.size(), 1u);
  EXPECT_EQ(row0[0].ost, row1[0].ost);
  EXPECT_EQ(row1[0].disk_offset, row0[0].disk_offset + kStripe);
}

TEST(FileLayout, UnalignedRangeSplitsAtStripeBoundary) {
  FileLayout layout(4, {0, 1}, kStripe, kCap);
  const auto extents = layout.map(kStripe / 2, kStripe);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].ost, 0);
  EXPECT_EQ(extents[0].len, kStripe / 2);
  EXPECT_EQ(extents[1].ost, 1);
  EXPECT_EQ(extents[1].len, kStripe / 2);
}

TEST(FileLayout, SubStripeReadStaysOnOneOst) {
  FileLayout layout(5, {0, 1, 2}, kStripe, kCap);
  const auto extents = layout.map(kStripe + 100, 1000);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].ost, 1);
  EXPECT_EQ(extents[0].len, 1000);
}

TEST(FileLayout, ObjectBasesAreMibAligned) {
  FileLayout layout(6, {0, 1, 2, 3}, kStripe, kCap);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(layout.object_base(i) % (1 << 20), 0);
    EXPECT_GE(layout.object_base(i), 0);
    EXPECT_LT(layout.object_base(i), kCap);
  }
}

TEST(FileLayout, DistinctFilesGetDistantObjects) {
  // Pseudo-random placement: different file ids land far apart on the same
  // OST with overwhelming probability.
  int far = 0;
  for (FileId f = 1; f <= 20; ++f) {
    FileLayout a(f, {0}, kStripe, kCap);
    FileLayout b(f + 1000, {0}, kStripe, kCap);
    if (std::abs(a.object_base(0) - b.object_base(0)) > (1ll << 30)) ++far;
  }
  EXPECT_GE(far, 15);
}

TEST(FileLayout, PlacementIsDeterministicPerFileId) {
  FileLayout a(42, {0, 1}, kStripe, kCap);
  FileLayout b(42, {0, 1}, kStripe, kCap);
  EXPECT_EQ(a.object_base(0), b.object_base(0));
  EXPECT_EQ(a.object_base(1), b.object_base(1));
}

struct MapCase {
  std::int64_t offset;
  std::int64_t len;
  int n_osts;
};

class LayoutPartitionTest : public ::testing::TestWithParam<MapCase> {};

// Property: map() partitions the byte range exactly — lengths sum to len,
// extents are in file order, and every extent lies inside its object.
TEST_P(LayoutPartitionTest, ExtentsPartitionRange) {
  const auto [offset, len, n_osts] = GetParam();
  std::vector<OstId> osts;
  for (int i = 0; i < n_osts; ++i) osts.push_back(static_cast<OstId>(i));
  FileLayout layout(7, osts, kStripe, kCap);
  const auto extents = layout.map(offset, len);
  std::int64_t total = 0;
  for (const auto& e : extents) {
    EXPECT_GT(e.len, 0);
    EXPECT_GE(e.ost, 0);
    EXPECT_LT(e.ost, n_osts);
    total += e.len;
  }
  EXPECT_EQ(total, len);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, LayoutPartitionTest,
    ::testing::Values(MapCase{0, 1, 1}, MapCase{0, 47008, 6}, MapCase{123, 4096, 3},
                      MapCase{kStripe - 1, 2, 2}, MapCase{0, 64 << 20, 6},
                      MapCase{7 * kStripe + 511, 3 * kStripe + 17, 4},
                      MapCase{1ll << 33, 10 << 20, 5}));

}  // namespace
}  // namespace qif::pfs
