// Tests for the DXT-style trace dump and dataset CSV round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "qif/monitor/export.hpp"

namespace qif::monitor {
namespace {

trace::OpRecord op(std::int32_t job, pfs::Rank rank, std::int64_t idx, pfs::OpType type,
                   std::int64_t offset, std::int64_t bytes,
                   std::vector<std::int32_t> targets) {
  trace::OpRecord r;
  r.job = job;
  r.rank = rank;
  r.op_index = idx;
  r.type = type;
  r.offset = offset;
  r.bytes = bytes;
  r.start = 1000 + idx;
  r.end = 2000 + idx;
  r.targets = std::move(targets);
  return r;
}

TEST(DxtExport, RoundTripPreservesEveryField) {
  trace::TraceLog log;
  log.record(op(0, 1, 0, pfs::OpType::kRead, 4096, 1 << 20, {0, 3}));
  log.record(op(2, 0, 5, pfs::OpType::kCreate, 0, 0, {trace::kMdtTarget}));
  log.record(op(0, 1, 1, pfs::OpType::kWrite, 1 << 20, 47008, {5}));

  std::stringstream ss;
  write_dxt(ss, log);
  const trace::TraceLog loaded = read_dxt(ss);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& a = log.records()[i];
    const auto& b = loaded.records()[i];
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.op_index, b.op_index);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.targets, b.targets);
  }
}

TEST(DxtExport, DumpIsCommentedAndGreppable) {
  trace::TraceLog log;
  log.record(op(0, 0, 0, pfs::OpType::kStat, 0, 0, {trace::kMdtTarget}));
  std::stringstream ss;
  write_dxt(ss, log);
  const std::string text = ss.str();
  EXPECT_NE(text.find("# DXT"), std::string::npos);
  EXPECT_NE(text.find("stat"), std::string::npos);
}

TEST(DxtExport, RejectsGarbage) {
  std::stringstream ss("0 0 0 frobnicate 0 0 0 0\n");
  EXPECT_THROW(read_dxt(ss), std::runtime_error);
}

Dataset tiny_dataset() {
  Dataset ds;
  ds.n_servers = 2;
  ds.dim = 3;
  for (int i = 0; i < 4; ++i) {
    Sample s;
    s.window_index = i * 10;
    s.label = i % 2;
    s.degradation = 1.0 + i * 0.75;
    s.features = {1.5 * i, -2.0, 3.25, 0.0, 1e9 + i, 1.0 / 3.0};
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

TEST(DatasetCsv, RoundTripPreservesShapeAndValues) {
  const Dataset ds = tiny_dataset();
  std::stringstream ss;
  write_dataset_csv(ss, ds);
  const Dataset loaded = read_dataset_csv(ss);
  EXPECT_EQ(loaded.n_servers, 2);
  EXPECT_EQ(loaded.dim, 3);
  ASSERT_EQ(loaded.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.samples[i].window_index, ds.samples[i].window_index);
    EXPECT_EQ(loaded.samples[i].label, ds.samples[i].label);
    EXPECT_DOUBLE_EQ(loaded.samples[i].degradation, ds.samples[i].degradation);
    ASSERT_EQ(loaded.samples[i].features.size(), 6u);
    for (std::size_t f = 0; f < 6; ++f) {
      EXPECT_DOUBLE_EQ(loaded.samples[i].features[f], ds.samples[i].features[f]);
    }
  }
}

TEST(DatasetCsv, HeaderNamesStandardSchemaFeatures) {
  Dataset ds;
  ds.n_servers = 1;
  ds.dim = MetricSchema::kPerServerDim;
  Sample s;
  s.features.assign(static_cast<std::size_t>(ds.dim), 0.0);
  ds.samples.push_back(s);
  std::stringstream ss;
  write_dataset_csv(ss, ds);
  std::string header;
  std::getline(ss, header);
  EXPECT_NE(header.find("s0.cli_n_read"), std::string::npos);
  EXPECT_NE(header.find("s0.srv_weighted_queue_ticks_std"), std::string::npos);
}

TEST(DatasetCsv, RejectsEmptyAndMalformed) {
  {
    std::stringstream ss("");
    EXPECT_THROW(read_dataset_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("window_index,label,degradation\n");  // no features
    EXPECT_THROW(read_dataset_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("window_index,label,degradation,s0.f0,s0.f1\n1,0,1.0,2.0\n");
    EXPECT_THROW(read_dataset_csv(ss), std::runtime_error);  // row too short
  }
}

}  // namespace
}  // namespace qif::monitor
