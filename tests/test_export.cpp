// Tests for the DXT-style trace dump and dataset CSV / .qds round trips.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "qif/monitor/export.hpp"
#include "qif/sim/rng.hpp"
#include "qif/trace/dxt.hpp"

namespace qif::monitor {
namespace {

trace::OpRecord op(std::int32_t job, pfs::Rank rank, std::int64_t idx, pfs::OpType type,
                   std::int64_t offset, std::int64_t bytes,
                   std::vector<std::int32_t> targets) {
  trace::OpRecord r;
  r.job = job;
  r.rank = rank;
  r.op_index = idx;
  r.type = type;
  r.offset = offset;
  r.bytes = bytes;
  r.start = 1000 + idx;
  r.end = 2000 + idx;
  r.targets = std::move(targets);
  return r;
}

TEST(DxtExport, RoundTripPreservesEveryField) {
  trace::TraceLog log;
  trace::OpRecord read = op(0, 1, 0, pfs::OpType::kRead, 4096, 1 << 20, {0, 3});
  read.file = 9;
  log.record(read);
  // The replay-metadata columns (file, path, stripes, hint) round-trip too.
  trace::OpRecord create = op(2, 0, 5, pfs::OpType::kCreate, 0, 0, {trace::kMdtTarget});
  create.file = 17;
  create.path = "/ior/job2/file_r0";
  create.stripes = 4;
  create.stripe_hint = 2;
  log.record(create);
  log.record(op(0, 1, 1, pfs::OpType::kWrite, 1 << 20, 47008, {5}));

  std::stringstream ss;
  trace::write_dxt(ss, log);
  const trace::TraceLog loaded = trace::read_dxt(ss);
  ASSERT_EQ(loaded.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& a = log.records()[i];
    const auto& b = loaded.records()[i];
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.op_index, b.op_index);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.file, b.file);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.targets, b.targets);
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.stripes, b.stripes);
    EXPECT_EQ(a.stripe_hint, b.stripe_hint);
  }
}

TEST(DxtExport, DumpIsCommentedAndGreppable) {
  trace::TraceLog log;
  log.record(op(0, 0, 0, pfs::OpType::kStat, 0, 0, {trace::kMdtTarget}));
  std::stringstream ss;
  trace::write_dxt(ss, log);
  const std::string text = ss.str();
  EXPECT_NE(text.find("# DXT"), std::string::npos);
  EXPECT_NE(text.find("stat"), std::string::npos);
}

TEST(DxtExport, RejectsGarbage) {
  std::stringstream ss("0 0 0 frobnicate 0 0 0 0\n");
  EXPECT_THROW(trace::read_dxt(ss), std::runtime_error);
}

TEST(DxtExport, RejectsTrailingGarbageOnLine) {
  // A numeric line with extra junk after the target list must not be
  // silently accepted.
  trace::TraceLog log;
  log.record(op(0, 0, 0, pfs::OpType::kRead, 0, 8, {1}));
  std::stringstream ss;
  trace::write_dxt(ss, log);
  std::string text = ss.str();
  text.replace(text.rfind('\n'), 1, " banana\n");
  std::stringstream bad(text);
  EXPECT_THROW(trace::read_dxt(bad), std::runtime_error);
}

TEST(DxtExport, WriterRejectsWhitespaceInPaths) {
  trace::TraceLog log;
  trace::OpRecord rec = op(0, 0, 0, pfs::OpType::kOpen, 0, 0, {trace::kMdtTarget});
  rec.path = "/dir/has space";
  log.record(rec);
  std::stringstream ss;
  EXPECT_THROW(trace::write_dxt(ss, log), std::invalid_argument);
}

TEST(DxtExport, HeaderlessInputParsesAsVersion1) {
  // Pre-metadata dumps have no version header and no file/path columns.
  std::stringstream ss("0 0 0 read 4096 8 1000 2000 1 2\n");
  const trace::TraceLog loaded = trace::read_dxt(ss);
  ASSERT_EQ(loaded.size(), 1u);
  const auto& r = loaded.records()[0];
  EXPECT_EQ(r.offset, 4096);
  EXPECT_EQ(r.bytes, 8);
  EXPECT_EQ(r.file, pfs::kInvalidFile);
  EXPECT_TRUE(r.path.empty());
  EXPECT_EQ(r.targets, (std::vector<std::int32_t>{1, 2}));
}

/// Pins the reader diagnostics' exact line/column format.  These strings
/// are contract: fuzz-found rejections must stay locatable.
template <typename Fn>
std::string error_message(Fn fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "<no exception>";
}

TEST(DxtExport, ErrorsNameLineAndColumn) {
  // Version-1 pins (headerless input, or an explicit v1 header): fields are
  // 1-based columns job rank op_index type offset bytes start end
  // targets...; the header comments still count as lines.  These strings
  // predate the v2 columns and must never change.
  EXPECT_EQ(error_message([] {
              std::stringstream ss("# DXT qif 1\n0 x 0 read 0 8 1000 2000 1\n");
              (void)trace::read_dxt(ss);
            }),
            "malformed DXT rank cell: 'x' at line 2, column 2");
  EXPECT_EQ(error_message([] {
              std::stringstream ss("0 0 0 frobnicate 0 8 0 1 1\n");
              (void)trace::read_dxt(ss);
            }),
            "unknown op type in DXT dump: 'frobnicate' at line 1, column 4");
  EXPECT_EQ(error_message([] {
              std::stringstream ss("0 0\n");
              (void)trace::read_dxt(ss);
            }),
            "missing DXT op_index field at line 1, column 3");
  EXPECT_EQ(error_message([] {
              std::stringstream ss("0 0 0 read 0 8 0 1 2 x\n");
              (void)trace::read_dxt(ss);
            }),
            "malformed DXT target cell: 'x' at line 1, column 10");
}

TEST(DxtExport, V2ErrorsNameLineAndColumn) {
  // Version-2 pins: job rank op_index type file offset bytes start end
  // path stripes hint targets...
  EXPECT_EQ(error_message([] {
              std::stringstream ss("# DXT qif 2\n0 0 0 read x 0 8 1000 2000 - 0 -1 1\n");
              (void)trace::read_dxt(ss);
            }),
            "malformed DXT file cell: 'x' at line 2, column 5");
  EXPECT_EQ(error_message([] {
              std::stringstream ss("# DXT qif 2\n0 0 0 read 7 0 8 1000 2000\n");
              (void)trace::read_dxt(ss);
            }),
            "missing DXT path field at line 2, column 10");
  EXPECT_EQ(error_message([] {
              std::stringstream ss("# DXT qif 3\n");
              (void)trace::read_dxt(ss);
            }),
            "unsupported DXT version 3 at line 1 (reader supports 1 and 2)");
  EXPECT_EQ(error_message([] {
              // A record parsed as v1, then a v2 header: the dump lies
              // about itself and must be rejected, not reinterpreted.
              std::stringstream ss("0 0 0 read 0 8 0 1 1\n# DXT qif 2\n");
              (void)trace::read_dxt(ss);
            }),
            "conflicting DXT version header at line 2");
}

TEST(DatasetCsv, ErrorsNameLineAndColumn) {
  const std::string header = "window_index,label,degradation,s0.f0,s0.f1\n";
  // Cells are 1-based columns; the header is line 1.
  EXPECT_EQ(error_message([&] {
              std::stringstream ss(header + "1,0,1.0,2.0,3.0\n2,0,1.0,2.0,nope\n");
              (void)read_dataset_csv(ss);
            }),
            "malformed CSV feature cell: 'nope' at line 3, column 5");
  EXPECT_EQ(error_message([&] {
              std::stringstream ss(header + "banana,0,1.0,2.0,3.0\n");
              (void)read_dataset_csv(ss);
            }),
            "malformed CSV window_index cell: 'banana' at line 2, column 1");
  EXPECT_EQ(error_message([&] {
              std::stringstream ss(header + "1,0\n");
              (void)read_dataset_csv(ss);
            }),
            "truncated CSV row at line 2, column 3");
  EXPECT_EQ(error_message([&] {
              std::stringstream ss(header + "1,0,,2.0,3.0\n");
              (void)read_dataset_csv(ss);
            }),
            "empty CSV degradation cell at line 2, column 3");
}

Dataset tiny_dataset() {
  Dataset ds(2, 3);
  for (int i = 0; i < 4; ++i) {
    double* f = ds.append_row(i * 10, i % 2, 1.0 + i * 0.75);
    f[0] = 1.5 * i;
    f[1] = -2.0;
    f[2] = 3.25;
    f[3] = 0.0;
    f[4] = 1e9 + i;
    f[5] = 1.0 / 3.0;
  }
  return ds;
}

void expect_equal_datasets(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.n_servers(), b.n_servers());
  ASSERT_EQ(a.dim(), b.dim());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.window_index(i), b.window_index(i));
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_DOUBLE_EQ(a.degradation(i), b.degradation(i));
    for (std::size_t f = 0; f < a.width(); ++f) {
      EXPECT_DOUBLE_EQ(a.row(i)[f], b.row(i)[f]) << "row " << i << " col " << f;
    }
  }
}

TEST(DatasetCsv, RoundTripPreservesShapeAndValues) {
  const Dataset ds = tiny_dataset();
  std::stringstream ss;
  write_dataset_csv(ss, ds);
  const Dataset loaded = read_dataset_csv(ss);
  EXPECT_EQ(loaded.n_servers(), 2);
  EXPECT_EQ(loaded.dim(), 3);
  ASSERT_EQ(loaded.size(), 4u);
  expect_equal_datasets(loaded, ds);
}

TEST(DatasetCsv, HeaderNamesStandardSchemaFeatures) {
  Dataset ds(1, MetricSchema::kPerServerDim);
  ds.append_row(0, 0, 0.0);
  std::stringstream ss;
  write_dataset_csv(ss, ds);
  std::string header;
  std::getline(ss, header);
  EXPECT_NE(header.find("s0.cli_n_read"), std::string::npos);
  EXPECT_NE(header.find("s0.srv_weighted_queue_ticks_std"), std::string::npos);
}

TEST(DatasetCsv, RejectsEmptyAndMalformed) {
  {
    std::stringstream ss("");
    EXPECT_THROW(read_dataset_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("window_index,label,degradation\n");  // no features
    EXPECT_THROW(read_dataset_csv(ss), std::runtime_error);
  }
  {
    std::stringstream ss("window_index,label,degradation,s0.f0,s0.f1\n1,0,1.0,2.0\n");
    EXPECT_THROW(read_dataset_csv(ss), std::runtime_error);  // row too short
  }
}

TEST(DatasetCsv, RejectsMalformedCells) {
  // Strict parsing: garbage must throw, not decay to 0 like atoll/atof did.
  const std::string header = "window_index,label,degradation,s0.f0,s0.f1\n";
  const char* bad_rows[] = {
      "banana,0,1.0,2.0,3.0\n",   // non-numeric window index
      "1x,0,1.0,2.0,3.0\n",       // trailing junk in an integer cell
      "1,zero,1.0,2.0,3.0\n",     // non-numeric label
      "1,0,1.0q,2.0,3.0\n",       // trailing junk in a double cell
      "1,0,1.0,2.0,\n",           // empty feature cell
      "1,0,1.0,2.0,nope\n",       // non-numeric feature
  };
  for (const char* row : bad_rows) {
    std::stringstream ss(header + row);
    EXPECT_THROW(read_dataset_csv(ss), std::runtime_error) << "row: " << row;
  }
  // The same cells, well-formed, parse fine.
  std::stringstream ok(header + "1,0,1.0,2.0,3.0\n");
  const Dataset ds = read_dataset_csv(ok);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_DOUBLE_EQ(ds.row(0)[1], 3.0);
}

TEST(DatasetQds, RoundTripIsByteIdentical) {
  const Dataset ds = tiny_dataset();
  std::stringstream first;
  write_dataset_qds(first, ds);
  const Dataset loaded = read_dataset_qds(first);
  expect_equal_datasets(loaded, ds);

  // Write -> read -> write must reproduce the file byte for byte.
  std::stringstream second;
  write_dataset_qds(second, loaded);
  EXPECT_EQ(first.str(), second.str());
}

TEST(DatasetQds, RoundTripsEmptyAndSchemaWidthTables) {
  {
    Dataset empty(3, 4);
    std::stringstream ss;
    write_dataset_qds(ss, empty);
    const Dataset loaded = read_dataset_qds(ss);
    EXPECT_EQ(loaded.n_servers(), 3);
    EXPECT_EQ(loaded.dim(), 4);
    EXPECT_EQ(loaded.size(), 0u);
  }
  {
    Dataset ds(2, MetricSchema::kPerServerDim);
    double* f = ds.append_row(7, 1, 2.5);
    f[0] = 42.0;
    std::stringstream ss;
    write_dataset_qds(ss, ds);
    const Dataset loaded = read_dataset_qds(ss);
    expect_equal_datasets(loaded, ds);
  }
}

TEST(DatasetQds, RejectsTruncation) {
  const Dataset ds = tiny_dataset();
  std::stringstream ss;
  write_dataset_qds(ss, ds);
  const std::string full = ss.str();
  // Every strict prefix must be rejected (spot-check a spread of cuts).
  for (const std::size_t cut : {full.size() - 1, full.size() / 2, std::size_t{24},
                                std::size_t{8}, std::size_t{3}, std::size_t{0}}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(read_dataset_qds(truncated), std::runtime_error) << "cut=" << cut;
  }
}

TEST(DatasetQds, RejectsBadMagicVersionAndHeader) {
  const Dataset ds = tiny_dataset();
  std::stringstream ss;
  write_dataset_qds(ss, ds);
  const std::string full = ss.str();
  {
    std::string bad = full;
    bad[0] = 'x';  // magic
    std::stringstream s(bad);
    EXPECT_THROW(read_dataset_qds(s), std::runtime_error);
  }
  {
    std::string bad = full;
    bad[8] = static_cast<char>(0x7f);  // version
    std::stringstream s(bad);
    EXPECT_THROW(read_dataset_qds(s), std::runtime_error);
  }
  {
    std::string bad = full;
    bad[20] = static_cast<char>(0xff);  // n_servers -> nonsense (also checksum)
    std::stringstream s(bad);
    EXPECT_THROW(read_dataset_qds(s), std::runtime_error);
  }
}

TEST(DatasetQds, RejectsChecksumMismatch) {
  const Dataset ds = tiny_dataset();
  std::stringstream ss;
  write_dataset_qds(ss, ds);
  std::string full = ss.str();
  // Flip one bit in the middle of the feature block: header still parses,
  // only the trailing checksum catches it.
  full[full.size() / 2] = static_cast<char>(full[full.size() / 2] ^ 0x01);
  std::stringstream corrupted(full);
  EXPECT_THROW(read_dataset_qds(corrupted), std::runtime_error);
}

TEST(DatasetQds, LegacyV1WriterStillRoundTrips) {
  // Version 1 stays writable (for downgrades) and readable forever.
  const Dataset ds = tiny_dataset();
  QdsWriteOptions opts;
  opts.version = 1;
  std::stringstream ss;
  write_dataset_qds(ss, ds, opts);
  const Dataset loaded = read_dataset_qds(ss);
  expect_equal_datasets(loaded, ds);
}

TEST(DatasetQds, CompressedRoundTripPreservesEveryValue) {
  Dataset ds(2, MetricSchema::kPerServerDim);
  sim::Rng rng(99);
  for (int i = 0; i < 64; ++i) {
    double* f = ds.append_row(i, i % 3, 0.25 * i);
    // Half the columns constant so compression actually engages.
    for (std::size_t j = 0; j < ds.width(); ++j) {
      f[j] = (j % 2 == 0) ? 1.0 : rng.uniform(-10.0, 10.0);
    }
  }
  QdsWriteOptions opts;
  opts.codec = QdsCodec::kQlz;
  std::stringstream plain;
  std::stringstream packed;
  write_dataset_qds(plain, ds);
  write_dataset_qds(packed, ds, opts);
  EXPECT_LT(packed.str().size(), plain.str().size());
  const Dataset loaded = read_dataset_qds(packed);
  expect_equal_datasets(loaded, ds);
}

TEST(DatasetQds, InspectReportsZeroCopyOnlyForRawV2) {
  const Dataset ds = tiny_dataset();
  std::stringstream v2;
  write_dataset_qds(v2, ds);
  const std::string img = v2.str();
  EXPECT_TRUE(inspect_dataset_qds(img.data(), img.size()).zero_copy);

  QdsWriteOptions v1_opts;
  v1_opts.version = 1;
  std::stringstream v1;
  write_dataset_qds(v1, ds, v1_opts);
  const std::string img1 = v1.str();
  EXPECT_FALSE(inspect_dataset_qds(img1.data(), img1.size()).zero_copy);
}

TEST(DatasetAuto, EmptyAndShorterThanMagicStreamsNameTheProblem) {
  // Satellite pin: a zero-byte file must say "empty", and a sub-magic
  // prefix must say "truncated" — not a generic read failure.
  {
    std::stringstream empty;
    try {
      (void)read_dataset_auto(empty);
      FAIL() << "empty stream loaded";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("empty dataset"), std::string::npos)
          << e.what();
    }
  }
  for (std::size_t n = 1; n < 8; ++n) {
    std::stringstream shorty(std::string(n, 'q'));
    try {
      (void)read_dataset_auto(shorty);
      FAIL() << "sub-magic stream of " << n << " bytes loaded";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated dataset"), std::string::npos)
          << e.what();
    }
  }
}

TEST(DatasetAuto, DispatchesOnLeadingBytes) {
  const Dataset ds = tiny_dataset();
  {
    std::stringstream ss;
    write_dataset_qds(ss, ds);
    EXPECT_TRUE(is_qds_magic(ss.str().data(), 8));
    const Dataset loaded = read_dataset_auto(ss);
    expect_equal_datasets(loaded, ds);
  }
  {
    std::stringstream ss;
    write_dataset_csv(ss, ds);
    EXPECT_FALSE(is_qds_magic(ss.str().data(), 8));
    const Dataset loaded = read_dataset_auto(ss);
    expect_equal_datasets(loaded, ds);
  }
}

}  // namespace
}  // namespace qif::monitor
