// Streaming data-plane tests: sharded .qds datasets behind a manifest,
// mmap zero-copy loads, and the chunked training path.
//
// The load-bearing claims pinned here:
//   - shard -> open -> materialize reproduces the dataset exactly, and the
//     shard/manifest bytes are deterministic;
//   - a ShardedDataset serves the same rows as the in-RAM table;
//   - training through the chunked RowAccess path (sharded, mmap'ed, or
//     budget-capped) produces a model bundle BYTE-identical to the in-RAM
//     path at the same seed — the refactor moved storage, not math.
// The chunked-trainer thread fan-out test also runs under ThreadSanitizer
// in scripts/tier1.sh.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>

#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/monitor/export.hpp"
#include "qif/monitor/qds_file.hpp"
#include "qif/sim/rng.hpp"

namespace qif::monitor {
namespace {

/// A synthetic dataset with learnable structure: class-1 rows carry a
/// shifted first column, so training has signal to latch onto.
Dataset synthetic_dataset(std::size_t rows) {
  Dataset ds(2, 5);
  sim::Rng rng(515);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(i % 2);
    double* f = ds.append_row(static_cast<std::int64_t>(i), label, 1.0 + label);
    for (std::size_t j = 0; j < ds.width(); ++j) {
      f[j] = rng.uniform(-1.0, 1.0) + (label == 1 && j % 5 == 0 ? 2.5 : 0.0);
    }
  }
  return ds;
}

std::string serialize(const Dataset& ds) {
  std::ostringstream os;
  write_dataset_qds(os, ds);
  return os.str();
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void expect_same_rows(const RowAccess& got, const Dataset& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.n_servers(), want.n_servers());
  ASSERT_EQ(got.dim(), want.dim());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.window_index(i), want.window_index(i)) << i;
    EXPECT_EQ(got.label(i), want.label(i)) << i;
    EXPECT_EQ(got.degradation(i), want.degradation(i)) << i;
    const double* g = got.row(i);
    const double* w = want.row(i);
    for (std::size_t j = 0; j < want.width(); ++j) EXPECT_EQ(g[j], w[j]) << i << "," << j;
  }
}

TEST(ShardedDataset, ShardOpenMaterializeRoundTrips) {
  const Dataset ds = synthetic_dataset(23);
  // 23 rows / 7 per shard -> shards of 7,7,7,2: exercises the remainder.
  const std::string manifest =
      write_sharded_dataset(testing::TempDir() + "rt", ds, 7);
  const ShardedDataset sharded = ShardedDataset::open(manifest);
  EXPECT_EQ(sharded.n_shards(), 4u);
  EXPECT_TRUE(sharded.zero_copy());
  expect_same_rows(sharded, ds);
  EXPECT_EQ(serialize(sharded.materialize()), serialize(ds));
}

TEST(ShardedDataset, ShardingIsDeterministic) {
  const Dataset ds = synthetic_dataset(11);
  const std::string m1 = write_sharded_dataset(testing::TempDir() + "det_a", ds, 4);
  const std::string m2 = write_sharded_dataset(testing::TempDir() + "det_b", ds, 4);
  const Manifest a = read_manifest_file(m1);
  const Manifest b = read_manifest_file(m2);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  const std::string dir1 = m1.substr(0, m1.rfind('/') + 1);
  const std::string dir2 = m2.substr(0, m2.rfind('/') + 1);
  for (std::size_t k = 0; k < a.shards.size(); ++k) {
    EXPECT_EQ(a.shards[k].rows, b.shards[k].rows);
    // Same rows, same bytes — shard order IS row order.
    EXPECT_EQ(slurp_file(dir1 + a.shards[k].file), slurp_file(dir2 + b.shards[k].file));
  }
}

TEST(ShardedDataset, CompressedShardsServeIdenticalRows) {
  // Constant-heavy columns so qlz actually wins (the writer falls back to
  // raw — and thus zero-copy — when compression would not shrink a block).
  Dataset ds(2, 5);
  for (int i = 0; i < 20; ++i) {
    double* f = ds.append_row(i, i % 2, 2.0);
    for (std::size_t j = 0; j < ds.width(); ++j) f[j] = static_cast<double>(i % 3);
  }
  QdsWriteOptions opts;
  opts.codec = QdsCodec::kQlz;
  const std::string manifest =
      write_sharded_dataset(testing::TempDir() + "comp", ds, 6, opts);
  const ShardedDataset sharded = ShardedDataset::open(manifest);
  EXPECT_FALSE(sharded.zero_copy());  // compressed blocks are materialized
  expect_same_rows(sharded, ds);
}

TEST(ShardedDataset, TinyMemoryBudgetStillServesEveryRow) {
  // A 4 KiB budget forces drop_pages() every few rows; the data must
  // survive because dropped pages re-fault from the file.
  const Dataset ds = synthetic_dataset(40);
  const std::string manifest =
      write_sharded_dataset(testing::TempDir() + "budget", ds, 8);
  const ShardedDataset sharded = ShardedDataset::open(manifest, 4096);
  expect_same_rows(sharded, ds);
  expect_same_rows(sharded, ds);  // second sweep: after the drops
}

TEST(SubsetRows, ComposesWithSplitRows) {
  const Dataset ds = synthetic_dataset(30);
  const std::string manifest =
      write_sharded_dataset(testing::TempDir() + "subset", ds, 9);
  const ShardedDataset sharded = ShardedDataset::open(manifest);
  auto [train_idx, test_idx] = ml::split_rows(ds.size(), 0.2, 17);
  const SubsetRows train(sharded, train_idx);
  const SubsetRows test(sharded, test_idx);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  // Same membership as the in-RAM split at the same seed.
  auto [train_view, test_view] = ml::split_dataset(ds, 0.2, 17);
  ASSERT_EQ(train.size(), train_view.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(train.window_index(i), train_view.window_index(i)) << i;
    EXPECT_EQ(train.label(i), train_view.label(i)) << i;
  }
  ASSERT_EQ(test.size(), test_view.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_EQ(test.window_index(i), test_view.window_index(i)) << i;
  }
}

/// Fits a TrainingServer on `rows` (streaming) or `ds` (in-RAM when rows
/// is null) and returns the serialized model bundle.
std::string fit_bundle(const Dataset& ds, const RowAccess* rows, int jobs) {
  core::TrainingServerConfig cfg;
  cfg.train.max_epochs = 6;
  cfg.train.jobs = jobs;
  core::TrainingServer server(cfg);
  if (rows != nullptr) {
    (void)server.fit_rows(*rows);
  } else {
    (void)server.fit(ds);
  }
  std::ostringstream os;
  server.save(os);
  return os.str();
}

TEST(ChunkedTraining, ShardedModelBytesMatchInRam) {
  const Dataset ds = synthetic_dataset(48);
  const std::string baseline = fit_bundle(ds, nullptr, 1);
  const std::string manifest =
      write_sharded_dataset(testing::TempDir() + "train", ds, 10);
  const ShardedDataset sharded = ShardedDataset::open(manifest);
  EXPECT_EQ(fit_bundle(ds, &sharded, 1), baseline);
  // A starved page budget changes I/O, never math.
  const ShardedDataset capped = ShardedDataset::open(manifest, 4096);
  EXPECT_EQ(fit_bundle(ds, &capped, 1), baseline);
}

TEST(ChunkedTraining, ThreadFanOutOverShardsIsBitIdentical) {
  // jobs=2 runs the training GEMMs on a pool while batches stream out of
  // the mmap'ed shards; under TSan this doubles as a race check on the
  // shard access path.
  const Dataset ds = synthetic_dataset(48);
  const std::string baseline = fit_bundle(ds, nullptr, 1);
  const std::string manifest =
      write_sharded_dataset(testing::TempDir() + "train_mt", ds, 10);
  const ShardedDataset sharded = ShardedDataset::open(manifest);
  EXPECT_EQ(fit_bundle(ds, &sharded, 2), baseline);
}

TEST(ChunkedTraining, MmapZeroCopyModelBytesMatchInRam) {
  const Dataset ds = synthetic_dataset(48);
  const std::string baseline = fit_bundle(ds, nullptr, 1);
  const std::string path = testing::TempDir() + "train_mmap.qds";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    write_dataset_qds(out, ds);
  }
  const MappedDataset mapped = map_dataset_qds(path);
  ASSERT_TRUE(mapped.zero_copy);
  EXPECT_EQ(fit_bundle(mapped.table, nullptr, 1), baseline);
}

TEST(Manifest, WriterReaderRoundTripAndRejectsPathEscapes) {
  Manifest m;
  m.n_servers = 2;
  m.dim = 5;
  m.rows = 9;
  m.shards = {{4, "a.000.qds", 0x0123456789abcdefull}, {5, "a.001.qds", 0xdeadbeef00c0ffeeull}};
  std::ostringstream os;
  write_manifest(os, m);
  std::istringstream is(os.str());
  const Manifest back = read_manifest(is);
  EXPECT_EQ(back.n_servers, 2);
  EXPECT_EQ(back.dim, 5);
  EXPECT_EQ(back.rows, 9u);
  ASSERT_EQ(back.shards.size(), 2u);
  EXPECT_EQ(back.shards[1].file, "a.001.qds");
  EXPECT_EQ(back.shards[0].checksum, 0x0123456789abcdefull);
  EXPECT_EQ(back.shards[1].checksum, 0xdeadbeef00c0ffeeull);

  for (const char* hostile : {"/etc/passwd", "../up.qds", "a/../../up.qds"}) {
    std::istringstream bad("qif.qdm 1\nshape 2 5 9\nshard 9 0000000000000000 " +
                           std::string(hostile) + "\nend\n");
    EXPECT_THROW((void)read_manifest(bad), std::runtime_error) << hostile;
  }
  // The checksum field is exactly 16 lowercase hex digits — anything else
  // (uppercase aliasing, short, or non-hex) is malformed, not coerced.
  for (const char* hex : {"0123456789ABCDEF", "123", "0123456789abcdeg", ""}) {
    std::istringstream bad("qif.qdm 1\nshape 2 5 9\nshard 9 " + std::string(hex) +
                           " a.qds\nend\n");
    EXPECT_THROW((void)read_manifest(bad), std::runtime_error) << hex;
  }
}

}  // namespace
}  // namespace qif::monitor
