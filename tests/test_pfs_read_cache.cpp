// Tests for the opt-in server read cache.
#include <gtest/gtest.h>

#include "qif/pfs/ost.hpp"
#include "qif/pfs/read_cache.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {
namespace {

TEST(ReadCache, DisabledByDefault) {
  ReadCache cache(ReadCacheParams{});
  EXPECT_FALSE(cache.enabled());
  cache.insert(0, 4096);
  EXPECT_FALSE(cache.lookup(0, 4096));
  EXPECT_EQ(cache.cached_bytes(), 0);
}

TEST(ReadCache, HitRequiresFullCoverage) {
  ReadCache cache(ReadCacheParams{1 << 20});
  cache.insert(1000, 5000);
  EXPECT_TRUE(cache.lookup(1000, 5000));
  EXPECT_TRUE(cache.lookup(2000, 1000));
  EXPECT_FALSE(cache.lookup(0, 1500));     // head not cached
  EXPECT_FALSE(cache.lookup(5000, 2000));  // tail exceeds extent
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(ReadCache, AdjacentInsertsCoalesce) {
  ReadCache cache(ReadCacheParams{1 << 20});
  cache.insert(0, 4096);
  cache.insert(4096, 4096);
  EXPECT_TRUE(cache.lookup(0, 8192));
  EXPECT_EQ(cache.cached_bytes(), 8192);
}

TEST(ReadCache, OverlappingInsertDoesNotDoubleCount) {
  ReadCache cache(ReadCacheParams{1 << 20});
  cache.insert(0, 8192);
  cache.insert(4096, 8192);  // overlaps the second half
  EXPECT_EQ(cache.cached_bytes(), 12288);
  EXPECT_TRUE(cache.lookup(0, 12288));
}

TEST(ReadCache, FifoEvictionRespectsBudget) {
  ReadCache cache(ReadCacheParams{10000});
  cache.insert(0, 6000);
  cache.insert(100000, 6000);  // pushes over budget: first extent evicted
  EXPECT_LE(cache.cached_bytes(), 10000);
  EXPECT_FALSE(cache.lookup(0, 6000));
  EXPECT_TRUE(cache.lookup(100000, 6000));
}

TEST(ReadCache, OstServesHitsAtMemorySpeed) {
  sim::Simulation s;
  DiskParams dp;
  dp.service_jitter = 0.0;
  WritebackParams wp;
  ReadCacheParams rc;
  rc.capacity_bytes = 64 << 20;
  Ost ost(s, 0, dp, wp, 1, rc);
  sim::SimTime hit_done = 0, miss_done = 0;
  ost.write(0, 1 << 20, nullptr);
  s.run_all();
  const sim::SimTime t0 = s.now();
  ost.read(0, 1 << 20, [&] { hit_done = s.now() - t0; });
  s.run_all();
  const sim::SimTime t1 = s.now();
  ost.read(500ll << 20, 1 << 20, [&] { miss_done = s.now() - t1; });
  s.run_all();
  EXPECT_LT(sim::to_millis(hit_done), 1.0);   // memcpy path
  EXPECT_GT(sim::to_millis(miss_done), 5.0);  // media path
  EXPECT_EQ(ost.read_cache().hits(), 1);
  EXPECT_EQ(ost.read_cache().misses(), 1);
}

TEST(ReadCache, OstDisabledCacheAlwaysHitsMedia) {
  sim::Simulation s;
  DiskParams dp;
  dp.service_jitter = 0.0;
  Ost ost(s, 0, dp, WritebackParams{}, 1);
  ost.write(0, 1 << 20, nullptr);
  s.run_all();
  const sim::SimTime t0 = s.now();
  sim::SimTime done = 0;
  ost.read(0, 1 << 20, [&] { done = s.now() - t0; });
  s.run_all();
  EXPECT_GT(sim::to_millis(done), 5.0);
}

}  // namespace
}  // namespace qif::pfs
