// Property tests for the exact-arithmetic token bucket (qif::ctrl).
//
// The bucket's whole value is its exactness contract: the volume admitted
// over any span equals floor(rate * elapsed / 1s) no matter how the span is
// chopped into refill calls, and wait_for() is a tight bound.  Each test
// drives a random schedule (seeded sim::Rng, so failures replay) against a
// naive reference that keeps ONE 128-bit balance in byte-nanoseconds — the
// arithmetic the production carry/token split must be indistinguishable
// from (the test_sim_property mirror idiom).
#include <gtest/gtest.h>

#include <cstdint>

#include "qif/ctrl/token_bucket.hpp"
#include "qif/sim/rng.hpp"

namespace qif::ctrl {
namespace {

/// Reference implementation: a single __int128 balance in byte-nanoseconds,
/// capped at capacity * 1s.  No token/carry split, no clamp subtleties —
/// just the defining refill integral, evaluated exactly.
struct NaiveBucket {
  __int128 balance;
  __int128 cap;
  std::int64_t rate;
  sim::SimTime last;

  NaiveBucket(std::int64_t capacity, std::int64_t rate_bytes_per_s, sim::SimTime now)
      : balance(static_cast<__int128>(capacity) * sim::kSecond),
        cap(balance), rate(rate_bytes_per_s), last(now) {}

  void refill(sim::SimTime now) {
    balance += static_cast<__int128>(rate) * (now - last);
    if (balance > cap) balance = cap;
    last = now;
  }
  bool try_consume(std::int64_t bytes, sim::SimTime now) {
    refill(now);
    const __int128 need = static_cast<__int128>(bytes) * sim::kSecond;
    if (balance < need) return false;
    balance -= need;
    return true;
  }
  std::int64_t available(sim::SimTime now) {
    refill(now);
    return static_cast<std::int64_t>(balance / sim::kSecond);
  }
  void set_rate(std::int64_t r, sim::SimTime now) {
    refill(now);
    rate = r;
  }
};

TEST(TokenBucket, RandomScheduleMatchesNaiveReference) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Rng rng(sim::Rng::derive_seed(seed, "bucket-schedule"));
    const std::int64_t capacity = 1 << 20;
    sim::SimTime t = 1000;
    TokenBucket bucket(capacity, 64 << 20, t);
    NaiveBucket naive(capacity, 64 << 20, t);
    for (int step = 0; step < 20000; ++step) {
      t += rng.uniform_int(0, 50 * sim::kMillisecond);
      switch (rng.uniform_int(0, 3)) {
        case 0: {  // consume anything from a sip to past the burst size
          const std::int64_t bytes = rng.uniform_int(1, capacity + capacity / 4);
          ASSERT_EQ(bucket.try_consume(bytes, t), naive.try_consume(bytes, t))
              << "seed " << seed << " step " << step << " bytes " << bytes;
          break;
        }
        case 1: {
          const std::int64_t avail = bucket.available(t);
          ASSERT_EQ(avail, naive.available(t)) << "seed " << seed << " step " << step;
          ASSERT_LE(avail, capacity);  // burst can never exceed the cap
          break;
        }
        case 2: {  // rate change mid-flight: a kink, not a reset
          const std::int64_t rate = rng.uniform_int(1, 512ll << 20);
          bucket.set_rate(rate, t);
          naive.set_rate(rate, t);
          break;
        }
        default: {  // wait_for agrees with the reference's own tight bound
          const std::int64_t bytes = rng.uniform_int(1, capacity);
          const sim::SimDuration wait = bucket.wait_for(bytes, t);
          NaiveBucket probe = naive;
          ASSERT_TRUE(probe.try_consume(bytes, t + wait))
              << "seed " << seed << " step " << step;
          if (wait > 0) {
            NaiveBucket early = naive;
            ASSERT_FALSE(early.try_consume(bytes, t + wait - 1))
                << "seed " << seed << " step " << step;
          }
          break;
        }
      }
    }
  }
}

TEST(TokenBucket, NoDriftOverAMillionSimSeconds) {
  // Greedily drain the bucket at every visit over 10^6 simulated seconds.
  // With an awkward (carry-heavy) rate the admitted total must still equal
  // capacity + floor(rate * elapsed / 1s) EXACTLY — one byte of drift per
  // call cadence would compound into rate skew over a long campaign.
  const std::int64_t capacity = 8 << 20;
  const std::int64_t rate = 123457;  // bytes/s, coprime-ish with 1e9
  const sim::SimTime t0 = 7;
  sim::Rng rng(99);
  TokenBucket bucket(capacity, rate, t0);
  sim::SimTime t = t0;
  // Drain the initial burst up front — a full bucket accrues nothing, which
  // would (correctly) lose the first interval's refill.
  ASSERT_TRUE(bucket.try_consume(capacity, t0));
  std::int64_t total = capacity;
  while (t - t0 < 1'000'000 * sim::kSecond) {
    // Steps stay short enough that rate * dt < capacity: the bucket is
    // drained to zero below, so the cap is never hit and the refill
    // integral is exactly linear.
    t += rng.uniform_int(1, 60 * sim::kSecond);
    const std::int64_t avail = bucket.available(t);
    ASSERT_LE(avail, capacity);
    ASSERT_TRUE(bucket.try_consume(avail, t));
    ASSERT_EQ(bucket.available(t), 0);
    total += avail;
  }
  const auto elapsed = static_cast<__int128>(t - t0);
  const auto expected = static_cast<std::int64_t>(
      capacity + (static_cast<__int128>(rate) * elapsed) / sim::kSecond);
  EXPECT_EQ(total, expected);
}

TEST(TokenBucket, BurstIsBoundedByCapacity) {
  TokenBucket bucket(4 << 20, 1 << 30, 0);
  // Starts full; an arbitrarily long idle stretch accrues nothing extra.
  EXPECT_EQ(bucket.available(1000 * sim::kSecond), 4 << 20);
  EXPECT_FALSE(bucket.try_consume((4 << 20) + 1, 1000 * sim::kSecond));
  EXPECT_TRUE(bucket.try_consume(4 << 20, 1000 * sim::kSecond));
  EXPECT_EQ(bucket.available(1000 * sim::kSecond), 0);
}

TEST(TokenBucket, WaitForIsTightDownToTheNanosecond) {
  // 3 bytes/s: one token every 333,333,333.3 ns.  After a full drain the
  // first byte lands exactly at ceil(1e9 / 3) — one nanosecond earlier must
  // still fail.
  TokenBucket bucket(10, 3, 0);
  ASSERT_TRUE(bucket.try_consume(10, 0));
  const sim::SimDuration wait = bucket.wait_for(1, 0);
  EXPECT_EQ(wait, 333'333'334);
  EXPECT_FALSE(bucket.try_consume(1, wait - 1));
  EXPECT_TRUE(bucket.try_consume(1, wait));
}

TEST(TokenBucket, NeverStarvesWhileRateIsPositive) {
  // Starvation-freedom: from any reachable state, a request within the
  // burst size is admitted after a finite, rate-bounded wait.  Random
  // drains keep the bucket poor; every wait must stay under the worst case
  // (a full capacity deficit at the current rate, plus one carry second).
  sim::Rng rng(4242);
  const std::int64_t capacity = 1 << 20;
  std::int64_t rate = 1 << 20;
  sim::SimTime t = 0;
  TokenBucket bucket(capacity, rate, t);
  for (int step = 0; step < 5000; ++step) {
    (void)bucket.try_consume(rng.uniform_int(1, capacity), t);
    if (step % 97 == 0) {
      rate = rng.uniform_int(1 << 10, 64 << 20);
      bucket.set_rate(rate, t);
    }
    const std::int64_t bytes = rng.uniform_int(1, capacity);
    const sim::SimDuration wait = bucket.wait_for(bytes, t);
    const auto bound = static_cast<sim::SimDuration>(
        (static_cast<__int128>(capacity) * sim::kSecond) / rate + sim::kSecond);
    ASSERT_LE(wait, bound) << "step " << step;
    t += wait;
    ASSERT_TRUE(bucket.try_consume(bytes, t)) << "step " << step;
    t += rng.uniform_int(0, 10 * sim::kMillisecond);
  }
}

TEST(TokenBucket, RateChangeKeepsAccruedBalance) {
  // Accrue half the bucket at a fast rate, then crash the rate to 1 byte/s:
  // the balance (including the fractional carry) carries over — set_rate is
  // a kink in the refill curve, not a reset.
  TokenBucket bucket(1 << 20, 1 << 20, 0);
  ASSERT_TRUE(bucket.try_consume(1 << 20, 0));  // drain the initial burst
  bucket.set_rate(1, sim::kSecond / 2);         // 524,288 bytes accrued
  EXPECT_EQ(bucket.available(sim::kSecond / 2), (1 << 20) / 2);
  // From here the trickle adds exactly one byte per second.
  EXPECT_EQ(bucket.available(sim::kSecond / 2 + 3 * sim::kSecond),
            (1 << 20) / 2 + 3);
}

}  // namespace
}  // namespace qif::ctrl
