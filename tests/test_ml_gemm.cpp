// Tests for the blocked/dispatched GEMM kernel family: equivalence with a
// straightforward reference across awkward shapes, accumulate semantics,
// and the bit-identical serial-vs-parallel determinism contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "qif/exec/thread_pool.hpp"
#include "qif/ml/gemm.hpp"
#include "qif/sim/rng.hpp"

namespace qif::ml {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  sim::Rng rng(seed);
  for (auto& v : m.data()) v = rng.normal(0, 1);
  return m;
}

// Reference implementations: textbook triple loops, no blocking.
Matrix ref_nn(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a.at(i, k) * b.at(k, j);
      c.at(i, j) = s;
    }
  }
  return c;
}

Matrix ref_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.rows(); ++k) s += a.at(k, i) * b.at(k, j);
      c.at(i, j) = s;
    }
  }
  return c;
}

Matrix ref_nt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a.at(i, k) * b.at(j, k);
      c.at(i, j) = s;
    }
  }
  return c;
}

// The kernels may contract multiply-adds into FMAs and the reference may
// not, so equivalence is near-equality scaled to the reduction length.
void expect_near(const Matrix& got, const Matrix& want, std::size_t k_extent) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  const double tol = 1e-12 * static_cast<double>(k_extent + 1);
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      EXPECT_NEAR(got.at(i, j), want.at(i, j), tol) << "at (" << i << "," << j << ")";
    }
  }
}

// Shapes chosen to exercise every kernel path: single element, tall/skinny
// (row-tile tails), short/wide (column-tile tails), sizes straddling the
// 32/8-wide column tiles, and the 4-wide row tile.
struct Shape {
  std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 1, 1},   {4, 1, 4},   {1, 7, 1},    {3, 5, 2},    {100, 3, 2},  {3, 100, 5},
    {7, 13, 9},  {8, 8, 8},   {33, 17, 33}, {40, 37, 64}, {64, 64, 32}, {31, 2, 65},
    {5, 40, 24},
};

TEST(Gemm, MatchesReferenceAcrossShapes) {
  for (const auto& s : kShapes) {
    const Matrix a = random_matrix(s.m, s.k, 1000 + s.m);
    const Matrix b = random_matrix(s.k, s.n, 2000 + s.n);
    const Matrix bt = random_matrix(s.n, s.k, 3000 + s.n);  // for NT
    const Matrix at = random_matrix(s.k, s.m, 4000 + s.m);  // for TN
    Matrix c;
    gemm_nn(a, b, c);
    expect_near(c, ref_nn(a, b), s.k);
    gemm_tn(at, b, c);
    expect_near(c, ref_tn(at, b), s.k);
    gemm_nt(a, bt, c);
    expect_near(c, ref_nt(a, bt), s.k);
  }
}

TEST(Gemm, MatmulWrappersStillAgreeWithEachOther) {
  // Matrix::matmul* route through the new kernels; cross-check the three
  // variants against each other the same way the legacy tests did.
  const Matrix a = random_matrix(9, 14, 5);
  const Matrix b = random_matrix(14, 11, 6);
  const Matrix nn = Matrix::matmul(a, b);
  expect_near(nn, ref_nn(a, b), 14);
}

TEST(Gemm, EmptyOperandsYieldEmptyOrZeroOutputs) {
  Matrix c;
  const Matrix a0(0, 5);
  const Matrix b0(5, 0);
  gemm_nn(a0, random_matrix(5, 3, 1), c);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 3u);
  gemm_nn(random_matrix(3, 5, 2), b0, c);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 0u);
  // k == 0: output is well-shaped and zero-filled.
  const Matrix ak(4, 0);
  const Matrix bk(0, 6);
  gemm_nn(ak, bk, c);
  ASSERT_EQ(c.rows(), 4u);
  ASSERT_EQ(c.cols(), 6u);
  for (const double v : c.data()) EXPECT_EQ(v, 0.0);
}

TEST(Gemm, AccumulateAddsOntoExistingOutput) {
  const Matrix a = random_matrix(10, 6, 7);
  const Matrix b = random_matrix(6, 9, 8);
  Matrix base = random_matrix(10, 9, 9);
  Matrix c = base;
  gemm_nn(a, b, c, /*accumulate=*/true);
  const Matrix prod = ref_nn(a, b);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(c.at(i, j), base.at(i, j) + prod.at(i, j), 1e-11);
    }
  }
}

TEST(Gemm, AccumulateRejectsWrongShape) {
  const Matrix a = random_matrix(4, 3, 1);
  const Matrix b = random_matrix(3, 5, 2);
  Matrix c(2, 2);
  EXPECT_THROW(gemm_nn(a, b, c, /*accumulate=*/true), std::invalid_argument);
}

TEST(Gemm, ShapeMismatchThrows) {
  const Matrix a = random_matrix(4, 3, 1);
  const Matrix b = random_matrix(4, 5, 2);
  Matrix c;
  EXPECT_THROW(gemm_nn(a, b, c), std::invalid_argument);
  const Matrix b2 = random_matrix(5, 4, 3);
  EXPECT_THROW(gemm_tn(a, b2, c), std::invalid_argument);
  EXPECT_THROW(gemm_nt(a, b2, c), std::invalid_argument);
}

TEST(Gemm, OutputAliasingAnInputThrows) {
  Matrix a = random_matrix(8, 8, 4);
  const Matrix b = random_matrix(8, 8, 5);
  EXPECT_THROW(gemm_nn(a, b, a), std::invalid_argument);
  // Also when the resize would change shape (and could reallocate).
  Matrix a2 = random_matrix(8, 4, 6);
  const Matrix b2 = random_matrix(4, 32, 7);
  EXPECT_THROW(gemm_nn(a2, b2, a2), std::invalid_argument);
}

TEST(Gemm, ReshapedViewComputesOnSameMemory) {
  // (2, 6) and (4, 3) views of the same buffer feed the same reduction.
  const Matrix a = random_matrix(2, 6, 11);
  const Matrix b = random_matrix(3, 5, 12);
  Matrix c;
  gemm_nn(MatView(a).reshaped(4, 3), b, c);
  Matrix flat(4, 3);
  flat.data() = a.data();
  expect_near(c, ref_nn(flat, b), 3);
}

TEST(Gemm, ParallelIsBitIdenticalToSerial) {
  // Big enough to clear the parallel threshold (96*40*40 = 153.6k madds).
  const Matrix a = random_matrix(96, 40, 21);
  const Matrix b = random_matrix(40, 40, 22);
  const Matrix at = random_matrix(40, 96, 23);  // TN: output rows = a.cols
  Matrix serial_nn, serial_tn, serial_nt;
  gemm_nn(a, b, serial_nn);
  gemm_tn(at, b, serial_tn);
  gemm_nt(a, b, serial_nt);
  for (const int jobs : {2, 3, 4, 7}) {
    exec::ThreadPool pool(jobs);
    Matrix par;
    gemm_nn(a, b, par, false, &pool);
    ASSERT_EQ(par.data().size(), serial_nn.data().size());
    for (std::size_t t = 0; t < par.data().size(); ++t) {
      ASSERT_EQ(par.data()[t], serial_nn.data()[t]) << "nn jobs=" << jobs << " idx=" << t;
    }
    gemm_tn(at, b, par, false, &pool);
    for (std::size_t t = 0; t < par.data().size(); ++t) {
      ASSERT_EQ(par.data()[t], serial_tn.data()[t]) << "tn jobs=" << jobs << " idx=" << t;
    }
    gemm_nt(a, b, par, false, &pool);
    for (std::size_t t = 0; t < par.data().size(); ++t) {
      ASSERT_EQ(par.data()[t], serial_nt.data()[t]) << "nt jobs=" << jobs << " idx=" << t;
    }
  }
}

TEST(Gemm, ParallelHandlesRowCountsAroundBlockBoundaries) {
  // Row counts that don't divide evenly across workers or the 4-row tile.
  exec::ThreadPool pool(3);
  for (const std::size_t m : {9u, 61u, 97u, 128u}) {
    const Matrix a = random_matrix(m, 48, 31 + m);
    const Matrix b = random_matrix(48, 40, 32);
    Matrix serial, par;
    gemm_nn(a, b, serial);
    gemm_nn(a, b, par, false, &pool);
    ASSERT_EQ(par.data().size(), serial.data().size());
    for (std::size_t t = 0; t < par.data().size(); ++t) {
      ASSERT_EQ(par.data()[t], serial.data()[t]) << "m=" << m << " idx=" << t;
    }
  }
}

TEST(Gemm, RowResultsAreIndependentOfRowCount) {
  // The serving contract: a row's output bits must not depend on how many
  // other rows share the call.  Regression for the padded-tail rework —
  // the old separate single-row remainder loop FMA-contracted differently
  // from the 4-row micro-kernel, so the same row produced different last
  // bits at m=1 than inside a larger batch.  Shapes cover the serving head
  // layers, the kernel stage, and tile-tail row counts.
  struct Shape {
    std::size_t m, k, n;
  };
  for (const Shape s : {Shape{4, 7, 32}, Shape{4, 32, 2}, Shape{28, 37, 64},
                        Shape{7, 37, 64}, Shape{5, 7, 32}, Shape{3, 13, 9}}) {
    const Matrix a = random_matrix(s.m, s.k, 500 + s.m);
    const Matrix b = random_matrix(s.k, s.n, 600 + s.n);
    const Matrix bt = random_matrix(s.n, s.k, 700 + s.n);
    Matrix full_nn, full_nt;
    gemm_nn(a, b, full_nn);
    gemm_nt(a, bt, full_nt);
    for (std::size_t i = 0; i < s.m; ++i) {
      const MatView row(a.row(i), 1, s.k);
      Matrix one;
      gemm_nn(row, b, one);
      for (std::size_t j = 0; j < s.n; ++j) {
        ASSERT_EQ(one.at(0, j), full_nn.at(i, j))
            << "nn m=" << s.m << " row " << i << " col " << j;
      }
      gemm_nt(row, bt, one);
      for (std::size_t j = 0; j < s.n; ++j) {
        ASSERT_EQ(one.at(0, j), full_nt.at(i, j))
            << "nt m=" << s.m << " row " << i << " col " << j;
      }
    }
  }
}

TEST(MatrixResize, ShrinkReusesAllocation) {
  Matrix m(10, 10);
  for (auto& v : m.data()) v = 3.5;
  const double* before = m.data().data();
  m.resize(5, 4);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.data().data(), before);  // shrink must not reallocate
  m.resize(10, 10);  // grow back within capacity: still no reallocation
  EXPECT_EQ(m.data().data(), before);
}

}  // namespace
}  // namespace qif::ml
