// MpscRing: bounded Vyukov queue used MPSC by the serving layer.
//
// Single-threaded semantics (FIFO, full/empty refusal, wraparound reuse)
// plus a producers x capacities stress matrix that runs real threads —
// under QIF_SANITIZE=thread this is the data-race gate for the lock-free
// ingest path.  Every pushed value must arrive exactly once, and each
// producer's own values must arrive in its submission order (ticket CAS
// serializes one producer's pushes into ascending cells).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "qif/serve/ring.hpp"

namespace qif::serve {
namespace {

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
}

TEST(MpscRing, FifoAndRefusalAtCapacity) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "push into a full ring must refuse";
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v)) << "pop from an empty ring must refuse";
}

TEST(MpscRing, WraparoundReusesCellsForManyLaps) {
  MpscRing<std::uint64_t> ring(8);
  std::uint64_t next_out = 0;
  for (std::uint64_t lap = 0; lap < 1000; ++lap) {
    for (std::uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(lap * 5 + i));
    std::uint64_t v = 0;
    while (ring.try_pop(v)) {
      EXPECT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_out, 5000u);
}

void stress(std::size_t n_producers, std::size_t capacity, std::uint64_t per_producer) {
  MpscRing<std::uint64_t> ring(capacity);
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(n_producers);
  // Values are tagged producer * 2^32 + i so the consumer can check
  // per-producer arrival order and exactly-once delivery.
  for (std::size_t p = 0; p < n_producers; ++p) {
    producers.emplace_back([&ring, &go, p, per_producer] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> next_from(n_producers, 0);
  std::uint64_t received = 0;
  go.store(true, std::memory_order_release);
  while (received < n_producers * per_producer) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<std::size_t>(v >> 32);
    const std::uint64_t i = v & 0xffffffffu;
    ASSERT_LT(p, n_producers);
    EXPECT_EQ(i, next_from[p]) << "producer " << p << " order broken";
    next_from[p] = i + 1;
    ++received;
  }
  for (auto& t : producers) t.join();
  std::uint64_t v = 0;
  EXPECT_FALSE(ring.try_pop(v));
  for (std::size_t p = 0; p < n_producers; ++p) EXPECT_EQ(next_from[p], per_producer);
}

TEST(MpscRing, StressOneProducerTinyRing) { stress(1, 2, 20000); }
TEST(MpscRing, StressTwoProducersTinyRing) { stress(2, 2, 10000); }
TEST(MpscRing, StressTwoProducersSmallRing) { stress(2, 8, 10000); }
TEST(MpscRing, StressFourProducersSmallRing) { stress(4, 8, 5000); }
TEST(MpscRing, StressFourProducersLargeRing) { stress(4, 256, 5000); }

}  // namespace
}  // namespace qif::serve
