// Parallel event lanes vs the sequential reference.
//
// The lane engine's contract is *bit-identity across lane counts*: running
// a scenario with N data lanes plus a metadata lane must reproduce the
// lanes=1 run's op-record stream byte for byte — same order, same
// timestamps, same feature windows, same events_executed — because
// labelled datasets are built by matching records between runs, and a
// partition-dependent trace would poison every label.  lanes=1 executes
// sequentially on the driver thread, so it is the sequential reference for
// the whole family.  (The classic engine — ScenarioConfig::lanes == 0 —
// uses a global creation counter for same-instant ties; the lane family
// orders those by entity instead, so classic is pinned separately by
// test_sim_golden and is intentionally not compared here.)
// These tests pin the contract: scenario hashes across lane counts
// (healthy and faulted), deterministic cross-lane same-tick tie-breaking,
// exact stall-depth restoration across lane-sync boundaries,
// random-partition property sweeps, and rejection of invalid partitions.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "qif/core/scenario.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/pfs/faults.hpp"
#include "qif/sim/lanes.hpp"
#include "qif/sim/rng.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::core {
namespace {

// trace::trace_fingerprint — the FNV-1a fold over the full record stream
// in completion (log) order — is what compares lane runs against the
// lanes=1 sequential reference here (and what `qif run --lanes N` prints).
std::uint64_t trace_hash(const trace::TraceLog& log) {
  return trace::trace_fingerprint(log);
}

ScenarioConfig lane_scenario(const std::string& target, const std::string& background,
                             std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.cluster = testbed_cluster_config(seed);
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = 5;
  cfg.target.scale = 0.25;
  cfg.horizon = 300 * sim::kSecond;
  if (!background.empty()) {
    InterferenceSpec bg;
    bg.workload = background;
    // Nodes 5 and 6 share the last lane block for every lane count up to 3
    // on the 7-node testbed, so each looping job stays lane-co-located.
    bg.nodes = {5, 6};
    bg.instances = 2;
    bg.scale = 0.25;
    bg.seed = 99;
    cfg.interference = bg;
  }
  return cfg;
}

void expect_identical(const ScenarioResult& seq, const ScenarioResult& par,
                      const std::string& what) {
  EXPECT_EQ(seq.target_finished, par.target_finished) << what;
  // Hops are one event in every partition (a same-lane delivery and a
  // cross-lane injection mint identical keys), so even the raw event count
  // is partition-independent.
  EXPECT_EQ(seq.events_executed, par.events_executed) << what;
  EXPECT_EQ(seq.target_completion, par.target_completion) << what;
  EXPECT_EQ(seq.target_body_start, par.target_body_start) << what;
  ASSERT_EQ(seq.trace.size(), par.trace.size()) << what;
  EXPECT_EQ(trace_hash(seq.trace), trace_hash(par.trace))
      << what << ": lane trace diverged from sequential";
  // Feature windows must match cell for cell, bitwise.
  EXPECT_EQ(seq.n_servers, par.n_servers) << what;
  EXPECT_EQ(seq.dim, par.dim) << what;
  ASSERT_EQ(seq.window_features.size(), par.window_features.size()) << what;
  if (!seq.window_features.empty()) {
    EXPECT_EQ(seq.window_features.feature_block(), par.window_features.feature_block())
        << what << ": feature windows diverged";
  }
}

// ---------------------------------------------------------------------------
// Scenario-level bit-identity across lane counts
// ---------------------------------------------------------------------------

TEST(LaneIdentity, HealthyScenariosMatchSequentialAtEveryLaneCount) {
  const struct {
    const char* target;
    const char* background;
  } cases[] = {
      {"ior-easy-write", ""},
      {"ior-easy-write", "ior-easy-read"},
      {"mdt-hard-write", "mdt-easy-write"},
  };
  for (const auto& c : cases) {
    ScenarioConfig cfg = lane_scenario(c.target, c.background, 31);
    cfg.lanes = 1;  // the sequential reference of the lane family
    const ScenarioResult seq = run_scenario(cfg);
    ASSERT_TRUE(seq.target_finished);
    for (const int lanes : {2, 3}) {
      cfg.lanes = lanes;
      const ScenarioResult par = run_scenario(cfg);
      expect_identical(seq, par, std::string(c.target) + " vs " +
                                     (c.background[0] ? c.background : "(none)") +
                                     " @ lanes=" + std::to_string(lanes));
    }
  }
}

TEST(LaneIdentity, FaultedScenarioMatchesSequential) {
  // Slow + stall + loss, all active mid-run so episodes cross many
  // lane-sync windows; the retry machinery is tightened so the stall
  // actually drives timeouts and resends across lanes.
  ScenarioConfig cfg = lane_scenario("ior-easy-write", "ior-easy-read", 17);
  cfg.cluster.client.rpc_deadline = 300 * sim::kMillisecond;
  cfg.cluster.client.retry_backoff = 50 * sim::kMillisecond;
  cfg.cluster.client.rpc_max_retries = 6;
  cfg.horizon = 120 * sim::kSecond;
  cfg.faults = pfs::faults::parse_fault_plan(
      "slow:ost=1,start=2,dur=20,factor=6;"
      "stall:ost=4,start=5,dur=8;"
      "drop:p=0.2,start=3,dur=6");
  cfg.lanes = 1;
  const ScenarioResult seq = run_scenario(cfg);
  for (const int lanes : {2, 3}) {
    cfg.lanes = lanes;
    const ScenarioResult par = run_scenario(cfg);
    expect_identical(seq, par, "faulted @ lanes=" + std::to_string(lanes));
  }
}

TEST(LaneIdentity, LaneRunsAreDeterministic) {
  // Two identical lane runs must agree event for event even though worker
  // threads race wall-clock-wise: determinism may not leak from the
  // scheduler.  events_executed is only comparable between *lane* runs (the
  // cross-lane note_size hop becomes an event of its own).
  ScenarioConfig cfg = lane_scenario("ior-hard-read", "ior-easy-write", 23);
  cfg.lanes = 3;
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.target_completion, b.target_completion);
  EXPECT_EQ(trace_hash(a.trace), trace_hash(b.trace));
}

// ---------------------------------------------------------------------------
// Random partitions (property sweep)
// ---------------------------------------------------------------------------

TEST(LaneProperty, RandomTopologiesAndPartitionsMatchSequential) {
  sim::Rng rng(0xfeedbeefULL);
  const char* workloads[] = {"ior-easy-write", "ior-easy-read", "mdt-easy-write"};
  for (int iter = 0; iter < 6; ++iter) {
    ScenarioConfig cfg;
    cfg.cluster = testbed_cluster_config(100 + static_cast<std::uint64_t>(iter));
    cfg.cluster.n_client_nodes = 4 + static_cast<int>(rng.next_u64() % 5);  // 4..8
    cfg.cluster.n_oss = 3 + static_cast<int>(rng.next_u64() % 3);           // 3..5
    cfg.target.workload = workloads[rng.next_u64() % 3];
    cfg.target.nodes = {0};
    cfg.target.procs_per_node = 1 + static_cast<int>(rng.next_u64() % 2);
    cfg.target.seed = rng.next_u64();
    cfg.target.scale = 0.125;
    cfg.horizon = 120 * sim::kSecond;
    cfg.monitors = false;
    cfg.lanes = 1;
    const ScenarioResult seq = run_scenario(cfg);
    const int lanes = 2 + static_cast<int>(rng.next_u64() %
                                           static_cast<std::uint64_t>(cfg.cluster.n_oss - 1));
    cfg.lanes = lanes;
    const ScenarioResult par = run_scenario(cfg);
    EXPECT_EQ(trace_hash(seq.trace), trace_hash(par.trace))
        << "iter " << iter << ": " << cfg.target.workload << " clients="
        << cfg.cluster.n_client_nodes << " oss=" << cfg.cluster.n_oss
        << " lanes=" << lanes;
    EXPECT_EQ(seq.target_completion, par.target_completion) << "iter " << iter;
    EXPECT_EQ(seq.events_executed, par.events_executed) << "iter " << iter;
  }
}

// ---------------------------------------------------------------------------
// Cross-lane message ordering (engine-level pins)
// ---------------------------------------------------------------------------

TEST(LaneOrdering, SameTickCrossLaneMessagesDrainInDeterministicKeyOrder) {
  // Two source lanes post to one destination at the same timestamp with the
  // same birth time.  The destination must execute them in (birth, origin)
  // key order — origin carries the source lane in its high bits, so lane 0's
  // message precedes lane 1's, and messages from one lane keep their post
  // (FIFO) order via the strictly increasing per-engine sequence number.
  sim::LaneGroup lanes(3, /*lookahead=*/10);
  std::vector<int> order;
  // Both sources sit at now()=0; every message lands at when=50, birth=0.
  lanes.post(1, 2, sim::EventKey{50, 0, lanes.lane(1).consume_origin(), 0},
             /*ctx=*/2, [&order] { order.push_back(10); });
  lanes.post(0, 2, sim::EventKey{50, 0, lanes.lane(0).consume_origin(), 0},
             /*ctx=*/2, [&order] { order.push_back(1); });
  lanes.post(0, 2, sim::EventKey{50, 0, lanes.lane(0).consume_origin(), 0},
             /*ctx=*/2, [&order] { order.push_back(2); });
  lanes.post(1, 2, sim::EventKey{50, 0, lanes.lane(1).consume_origin(), 0},
             /*ctx=*/2, [&order] { order.push_back(11); });
  lanes.run_until(60);
  // Lane 0's two messages first (lower lane tag), each lane FIFO.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 11}));
}

TEST(LaneOrdering, ChildKeysInheritTheParentsPositionInTheMergedOrder) {
  // A zero-delay child (note_size-style) inherits the parent's key with a
  // bumped sub, so in the merged order it sits directly behind its parent —
  // in particular *ahead* of a same-tick event minted by a higher-tagged
  // lane, exactly where the sequential engine's synchronous call would run.
  sim::LaneGroup lanes(1, /*lookahead=*/10);
  std::vector<int> order;
  auto& data = lanes.lane(0);
  data.schedule_at(50, [&] {
    order.push_back(1);
    lanes.post(0, lanes.meta_lane(), data.child_key(), /*ctx=*/1,
               [&order] { order.push_back(2); });
  });
  // The meta lane's own event at the same tick: key {50, 0, lane1-origin, 0}
  // sorts after the child's inherited {50, 0, lane0-origin, 1}.
  lanes.meta().schedule_at(50, [&order] { order.push_back(3); });
  lanes.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Stall episodes across lane-sync boundaries
// ---------------------------------------------------------------------------

TEST(LaneFaults, StallSpanningSyncBoundariesRestoresDepthExactly) {
  // A stall whose window spans many lane-sync boundaries (the fabric
  // lookahead is 60 us; the stall lasts 4 s) must leave the disk unstalled
  // and the fault multiplier at exactly 1.0 afterwards, with nested
  // episodes unwinding by depth — in the classic engine (lanes_n == 0) and
  // in every lane layout.
  for (const int lanes_n : {0, 1, 2, 3}) {
    std::optional<sim::Simulation> sim;
    std::optional<sim::LaneGroup> lanes;
    std::optional<pfs::Cluster> cluster;
    pfs::ClusterConfig cfg = testbed_cluster_config(5);
    if (lanes_n == 0) {
      sim.emplace();
      cluster.emplace(*sim, cfg);
    } else {
      lanes.emplace(lanes_n, cfg.network.latency);
      cluster.emplace(*lanes, cfg);
    }
    pfs::faults::FaultPlan plan;
    plan.stalls.push_back({3, sim::kSecond, 4 * sim::kSecond});
    plan.stalls.push_back({3, 2 * sim::kSecond, sim::kSecond});  // nested
    plan.slow_disks.push_back({3, sim::kSecond, 2 * sim::kSecond, 5.0});
    pfs::faults::FaultInjector injector(*cluster, plan, 77);
    const auto run_to = [&](sim::SimTime t) {
      if (lanes_n == 0) {
        sim->run_until(t);
      } else {
        lanes->run_until(t);
      }
    };
    run_to(1500 * sim::kMillisecond);
    EXPECT_TRUE(cluster->ost(3).disk().stalled()) << "lanes=" << lanes_n;
    EXPECT_DOUBLE_EQ(cluster->ost(3).disk().fault_multiplier(), 5.0);
    run_to(3500 * sim::kMillisecond);  // inner stall + slow over, outer on
    EXPECT_TRUE(cluster->ost(3).disk().stalled()) << "lanes=" << lanes_n;
    EXPECT_EQ(cluster->ost(3).disk().fault_multiplier(), 1.0);
    run_to(6 * sim::kSecond);
    EXPECT_FALSE(cluster->ost(3).disk().stalled()) << "lanes=" << lanes_n;
    EXPECT_EQ(cluster->ost(3).disk().fault_multiplier(), 1.0);
    EXPECT_EQ(injector.activations(), 3);
  }
}

// ---------------------------------------------------------------------------
// Partition validation
// ---------------------------------------------------------------------------

TEST(LaneValidation, RejectsInvalidPartitions) {
  {
    // lanes == 0 is the classic single-engine default — legal, not a lane
    // run.  Negative counts are meaningless and rejected.
    ScenarioConfig cfg = lane_scenario("ior-easy-write", "", 3);
    cfg.lanes = -2;
    EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
  }
  {
    // More lanes than OSS groups: a lane without a server port could never
    // advance against the lookahead bound, so it is rejected outright.
    ScenarioConfig cfg = lane_scenario("ior-easy-write", "", 3);
    cfg.lanes = cfg.cluster.n_oss + 1;
    EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
  }
}

TEST(LaneValidation, RejectsJobsSpanningLanes) {
  // Nodes 0 and 6 land in different lanes of the 7-node testbed for any
  // lane count >= 2; a job's completion state is lane-local, so the spec
  // must be rejected, not silently raced.
  ScenarioConfig cfg = lane_scenario("ior-easy-write", "", 3);
  cfg.lanes = 2;
  cfg.target.nodes = {0, 6};
  EXPECT_THROW((void)run_scenario(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace qif::core
