// Fuzz-style corruption tests for the binary `.qds` dataset format.
//
// The reader's contract: a corrupted or truncated file ALWAYS throws
// std::runtime_error — it never crashes, never OOMs on a hostile header,
// and never silently yields a dataset that differs from what was written.
// The suites below enforce that exhaustively: every possible truncation
// length and every possible single-bit flip of a real file, plus seeded
// multi-byte corruption rounds.  This test also runs under AddressSanitizer
// in scripts/tier1.sh, so an out-of-bounds read on any mutation fails loud.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

#include "qif/monitor/export.hpp"
#include "qif/sim/rng.hpp"

namespace qif::monitor {
namespace {

/// A dataset carrying the real 37-wide metric schema, so the stamped
/// layout hash is non-zero and the schema-hash check is exercised too.
Dataset schema_dataset() {
  Dataset ds(2, MetricSchema::kPerServerDim);
  sim::Rng rng(2024);
  for (int i = 0; i < 3; ++i) {
    double* f = ds.append_row(i * 5, i % 2, 1.0 + 0.5 * i);
    for (std::size_t j = 0; j < ds.width(); ++j) f[j] = rng.uniform(-100.0, 100.0);
  }
  return ds;
}

/// A small custom-dim dataset (layout hash 0 in the header).
Dataset custom_dataset() {
  Dataset ds(2, 3);
  for (int i = 0; i < 4; ++i) {
    double* f = ds.append_row(i, i % 2, 1.0 + i);
    for (int j = 0; j < 6; ++j) f[j] = i * 10.0 + j;
  }
  return ds;
}

std::string serialize(const Dataset& ds) {
  std::ostringstream os;
  write_dataset_qds(os, ds);
  return os.str();
}

/// Reads a mutated image.  Passes when the reader throws; a mutation that
/// loads without throwing must round-trip back to the *original* bytes
/// (i.e. be semantically lossless) to not count as silent corruption.
void expect_rejected_or_lossless(const std::string& original,
                                 const std::string& mutated,
                                 const std::string& what) {
  std::istringstream is(mutated);
  try {
    const Dataset loaded = read_dataset_qds(is);
    EXPECT_EQ(serialize(loaded), original)
        << what << ": corrupted image loaded silently";
  } catch (const std::runtime_error&) {
    // Expected: loud rejection.
  }
}

TEST(QdsFuzz, EveryTruncationLengthThrows) {
  for (const Dataset& ds : {schema_dataset(), custom_dataset()}) {
    const std::string full = serialize(ds);
    ASSERT_GT(full.size(), 44u);  // header + at least some payload
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      std::istringstream is(full.substr(0, cut));
      EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error)
          << "prefix of length " << cut << " of " << full.size()
          << " loaded without error";
    }
  }
}

TEST(QdsFuzz, EverySingleBitFlipIsRejected) {
  const std::string full = serialize(schema_dataset());
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      std::istringstream is(mutated);
      EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error)
          << "flip of bit " << bit << " at byte " << pos << " loaded silently";
    }
  }
}

TEST(QdsFuzz, SeededMultiByteCorruptionNeverLoadsSilently) {
  const std::string full = serialize(custom_dataset());
  sim::Rng rng(sim::Rng::derive_seed(7, "qds-fuzz"));
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = full;
    const int edits = static_cast<int>(rng.uniform_int(1, 8));
    bool changed = false;
    for (int e = 0; e < edits; ++e) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(full.size()) - 1));
      const char byte = static_cast<char>(rng.uniform_int(0, 255));
      changed = changed || mutated[pos] != byte;
      mutated[pos] = byte;
    }
    if (!changed) continue;  // the random bytes happened to match
    expect_rejected_or_lossless(full, mutated, "round " + std::to_string(round));
  }
}

TEST(QdsFuzz, TrailingGarbageIsRejected) {
  const std::string full = serialize(schema_dataset());
  for (const std::string& tail : {std::string(1, '\0'), std::string("x"),
                                  std::string(64, 'A')}) {
    std::istringstream is(full + tail);
    EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error);
  }
}

TEST(QdsFuzz, HostileHeaderCountsAreRejectedBeforeAllocation) {
  // Hand-forge headers declaring absurd shapes over a tiny payload.  The
  // reader must reject on the declared-size check, not attempt a
  // multi-gigabyte allocation (an ASan/OOM crash would fail this test).
  const std::string full = serialize(custom_dataset());
  struct Patch {
    std::size_t offset;  // field offset in the file
    std::uint64_t value;
    std::size_t size;
  };
  // Offsets per the format table: n_servers @20 (i32), dim @24 (i32),
  // rows @28 (u64).
  const Patch patches[] = {
      {20, 0x7fffffffu, 4},             // n_servers = INT32_MAX
      {24, 0x7fffffffu, 4},             // dim = INT32_MAX
      {28, 0xffffffffffffffffull, 8},   // rows = UINT64_MAX
      {28, 0x0000000100000000ull, 8},   // rows = 2^32
  };
  for (const Patch& p : patches) {
    std::string mutated = full;
    for (std::size_t b = 0; b < p.size; ++b) {
      mutated[p.offset + b] = static_cast<char>((p.value >> (8 * b)) & 0xff);
    }
    std::istringstream is(mutated);
    EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error);
  }
}

TEST(QdsFuzz, UncorruptedImageStillRoundTrips) {
  // Sanity anchor for the suite: the pristine bytes load and re-serialize
  // byte-identically (so the rejections above are about the mutations).
  for (const Dataset& ds : {schema_dataset(), custom_dataset()}) {
    const std::string full = serialize(ds);
    std::istringstream is(full);
    const Dataset loaded = read_dataset_qds(is);
    EXPECT_EQ(serialize(loaded), full);
  }
}

}  // namespace
}  // namespace qif::monitor
