// Fuzz-style corruption tests for the binary `.qds` dataset format.
//
// The reader's contract: a corrupted or truncated file ALWAYS throws
// std::runtime_error — it never crashes, never OOMs on a hostile header,
// and never silently yields a dataset that differs from what was written.
// The suites below enforce that exhaustively: every possible truncation
// length and every possible single-bit flip of a real file, plus seeded
// multi-byte corruption rounds.  This test also runs under AddressSanitizer
// in scripts/tier1.sh, so an out-of-bounds read on any mutation fails loud.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "qif/monitor/export.hpp"
#include "qif/monitor/qds_file.hpp"
#include "qif/monitor/qlz.hpp"
#include "qif/sim/rng.hpp"

namespace qif::monitor {
namespace {

/// A dataset carrying the real 37-wide metric schema, so the stamped
/// layout hash is non-zero and the schema-hash check is exercised too.
Dataset schema_dataset() {
  Dataset ds(2, MetricSchema::kPerServerDim);
  sim::Rng rng(2024);
  for (int i = 0; i < 3; ++i) {
    double* f = ds.append_row(i * 5, i % 2, 1.0 + 0.5 * i);
    for (std::size_t j = 0; j < ds.width(); ++j) f[j] = rng.uniform(-100.0, 100.0);
  }
  return ds;
}

/// A small custom-dim dataset (layout hash 0 in the header).
Dataset custom_dataset() {
  Dataset ds(2, 3);
  for (int i = 0; i < 4; ++i) {
    double* f = ds.append_row(i, i % 2, 1.0 + i);
    for (int j = 0; j < 6; ++j) f[j] = i * 10.0 + j;
  }
  return ds;
}

std::string serialize(const Dataset& ds) {
  std::ostringstream os;
  write_dataset_qds(os, ds);
  return os.str();
}

/// Reads a mutated image.  Passes when the reader throws; a mutation that
/// loads without throwing must round-trip back to the *original* bytes
/// (i.e. be semantically lossless) to not count as silent corruption.
void expect_rejected_or_lossless(const std::string& original,
                                 const std::string& mutated,
                                 const std::string& what) {
  std::istringstream is(mutated);
  try {
    const Dataset loaded = read_dataset_qds(is);
    EXPECT_EQ(serialize(loaded), original)
        << what << ": corrupted image loaded silently";
  } catch (const std::runtime_error&) {
    // Expected: loud rejection.
  }
}

TEST(QdsFuzz, EveryTruncationLengthThrows) {
  for (const Dataset& ds : {schema_dataset(), custom_dataset()}) {
    const std::string full = serialize(ds);
    ASSERT_GT(full.size(), 44u);  // header + at least some payload
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      std::istringstream is(full.substr(0, cut));
      EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error)
          << "prefix of length " << cut << " of " << full.size()
          << " loaded without error";
    }
  }
}

TEST(QdsFuzz, EverySingleBitFlipIsRejected) {
  const std::string full = serialize(schema_dataset());
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      std::istringstream is(mutated);
      EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error)
          << "flip of bit " << bit << " at byte " << pos << " loaded silently";
    }
  }
}

TEST(QdsFuzz, SeededMultiByteCorruptionNeverLoadsSilently) {
  const std::string full = serialize(custom_dataset());
  sim::Rng rng(sim::Rng::derive_seed(7, "qds-fuzz"));
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = full;
    const int edits = static_cast<int>(rng.uniform_int(1, 8));
    bool changed = false;
    for (int e = 0; e < edits; ++e) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(full.size()) - 1));
      const char byte = static_cast<char>(rng.uniform_int(0, 255));
      changed = changed || mutated[pos] != byte;
      mutated[pos] = byte;
    }
    if (!changed) continue;  // the random bytes happened to match
    expect_rejected_or_lossless(full, mutated, "round " + std::to_string(round));
  }
}

TEST(QdsFuzz, TrailingGarbageIsRejected) {
  const std::string full = serialize(schema_dataset());
  for (const std::string& tail : {std::string(1, '\0'), std::string("x"),
                                  std::string(64, 'A')}) {
    std::istringstream is(full + tail);
    EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error);
  }
}

TEST(QdsFuzz, HostileHeaderCountsAreRejectedBeforeAllocation) {
  // Hand-forge headers declaring absurd shapes over a tiny payload.  The
  // reader must reject on the declared-size check, not attempt a
  // multi-gigabyte allocation (an ASan/OOM crash would fail this test).
  const std::string full = serialize(custom_dataset());
  struct Patch {
    std::size_t offset;  // field offset in the file
    std::uint64_t value;
    std::size_t size;
  };
  // Offsets per the format table: n_servers @20 (i32), dim @24 (i32),
  // rows @28 (u64).
  const Patch patches[] = {
      {20, 0x7fffffffu, 4},             // n_servers = INT32_MAX
      {24, 0x7fffffffu, 4},             // dim = INT32_MAX
      {28, 0xffffffffffffffffull, 8},   // rows = UINT64_MAX
      {28, 0x0000000100000000ull, 8},   // rows = 2^32
  };
  for (const Patch& p : patches) {
    std::string mutated = full;
    for (std::size_t b = 0; b < p.size; ++b) {
      mutated[p.offset + b] = static_cast<char>((p.value >> (8 * b)) & 0xff);
    }
    std::istringstream is(mutated);
    EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error);
  }
}

TEST(QdsFuzz, UncorruptedImageStillRoundTrips) {
  // Sanity anchor for the suite: the pristine bytes load and re-serialize
  // byte-identically (so the rejections above are about the mutations).
  for (const Dataset& ds : {schema_dataset(), custom_dataset()}) {
    const std::string full = serialize(ds);
    std::istringstream is(full);
    const Dataset loaded = read_dataset_qds(is);
    EXPECT_EQ(serialize(loaded), full);
  }
}

std::string serialize_with(const Dataset& ds, const QdsWriteOptions& opts) {
  std::ostringstream os;
  write_dataset_qds(os, ds, opts);
  return os.str();
}

TEST(QdsFuzz, LegacyV1ImagesRejectEveryTruncationAndBitFlip) {
  // The version-1 writer stays available; its images keep the same
  // corruption contract as version 2.
  QdsWriteOptions opts;
  opts.version = 1;
  const std::string full = serialize_with(custom_dataset(), opts);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error) << "cut " << cut;
  }
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      std::istringstream is(mutated);
      EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error)
          << "flip of bit " << bit << " at byte " << pos;
    }
  }
}

/// A dataset whose columns compress (long constant runs), for the
/// compressed-image corruption suites.
Dataset repetitive_dataset() {
  Dataset ds(2, 3);
  for (int i = 0; i < 32; ++i) {
    double* f = ds.append_row(i, i % 2, 1.0);
    for (int j = 0; j < 6; ++j) f[j] = 3.0;
  }
  return ds;
}

TEST(QdsFuzz, CompressedImagesRejectEveryTruncationAndBitFlip) {
  const Dataset ds = repetitive_dataset();
  QdsWriteOptions opts;
  opts.codec = QdsCodec::kQlz;
  const std::string full = serialize_with(ds, opts);
  // Prove the codec actually engaged, otherwise this re-tests raw blocks.
  ASSERT_LT(full.size(), serialize(ds).size());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream is(full.substr(0, cut));
    EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error) << "cut " << cut;
  }
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      std::istringstream is(mutated);
      EXPECT_THROW((void)read_dataset_qds(is), std::runtime_error)
          << "flip of bit " << bit << " at byte " << pos;
    }
  }
}

/// Writes `bytes` to a fresh file under the test temp dir.
std::string write_temp_file(const std::string& name, const std::string& bytes) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

TEST(QdsMmapFuzz, EveryTruncationLengthThrows) {
  // Same contract as the buffered reader, through the mmap path: the
  // validation pass is shared, so the taxonomy must match exactly.
  const std::string full = serialize(custom_dataset());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::string path = write_temp_file("mmap_trunc.qds", full.substr(0, cut));
    EXPECT_THROW((void)map_dataset_qds(path), std::runtime_error) << "cut " << cut;
  }
}

TEST(QdsMmapFuzz, EverySingleBitFlipIsRejected) {
  const std::string full = serialize(custom_dataset());
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      const std::string path = write_temp_file("mmap_flip.qds", mutated);
      EXPECT_THROW((void)map_dataset_qds(path), std::runtime_error)
          << "flip of bit " << bit << " at byte " << pos;
    }
  }
}

TEST(QdsMmapFuzz, PristineFileMapsZeroCopyAndRoundTrips) {
  const std::string full = serialize(custom_dataset());
  const std::string path = write_temp_file("mmap_ok.qds", full);
  const MappedDataset mapped = map_dataset_qds(path);
  EXPECT_TRUE(mapped.zero_copy);
  EXPECT_EQ(serialize(mapped.table), full);
}

/// A sharded on-disk dataset for the manifest fuzz suites: returns the
/// manifest path (shards live next to it).
std::string sharded_fixture(const char* tag) {
  const Dataset ds = custom_dataset();
  const std::string prefix = testing::TempDir() + tag;
  return write_sharded_dataset(prefix, ds, 2);
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(QdmFuzz, EverySingleBitFlipOfTheManifestIsRejected) {
  // The manifest carries no checksum; its defence is strict parsing plus
  // cross-validation against the shard headers.  Every single-bit flip
  // must land in one of those tripwires.
  const std::string manifest_path = sharded_fixture("flip");
  const std::string original = slurp_file(manifest_path);
  ASSERT_FALSE(original.empty());
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = original;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      const std::string path = write_temp_file("flip_mut.qdm", mutated);
      EXPECT_THROW((void)ShardedDataset::open(path), std::runtime_error)
          << "flip of bit " << bit << " at byte " << pos << " opened silently";
    }
  }
}

TEST(QdmFuzz, EveryManifestTruncationIsRejected) {
  const std::string manifest_path = sharded_fixture("trunc");
  const std::string original = slurp_file(manifest_path);
  for (std::size_t cut = 0; cut < original.size(); ++cut) {
    const std::string path = write_temp_file("trunc_mut.qdm", original.substr(0, cut));
    EXPECT_THROW((void)ShardedDataset::open(path), std::runtime_error) << "cut " << cut;
  }
}

TEST(QdmFuzz, CorruptedShardFileFailsTheOpen) {
  const std::string manifest_path = sharded_fixture("shardflip");
  const Manifest m = read_manifest_file(manifest_path);
  ASSERT_GE(m.shards.size(), 2u);
  const std::string dir = manifest_path.substr(0, manifest_path.rfind('/') + 1);
  const std::string shard_path = dir + m.shards[1].file;
  const std::string original = slurp_file(shard_path);
  for (std::size_t pos = 0; pos < original.size(); pos += 7) {
    std::string mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    std::ofstream out(shard_path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    EXPECT_THROW((void)ShardedDataset::open(manifest_path), std::runtime_error)
        << "shard flip at byte " << pos << " opened silently";
  }
  // Restore and prove the fixture itself is sound.
  std::ofstream out(shard_path, std::ios::binary | std::ios::trunc);
  out.write(original.data(), static_cast<std::streamsize>(original.size()));
  out.close();
  EXPECT_NO_THROW((void)ShardedDataset::open(manifest_path));
}

TEST(QlzFuzz, RandomBuffersNeverCrashTheDecompressor) {
  // The block checksum above the codec guarantees integrity; the codec
  // itself must merely never read or write out of bounds on garbage
  // (ASan-enforced) — throwing is fine, succeeding with junk is fine.
  sim::Rng rng(sim::Rng::derive_seed(11, "qlz-fuzz"));
  std::vector<char> src;
  std::vector<char> dst;
  for (int round = 0; round < 4000; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 96));
    src.resize(n);
    for (char& b : src) b = static_cast<char>(rng.uniform_int(0, 255));
    const auto raw_n = static_cast<std::size_t>(rng.uniform_int(0, 256));
    dst.assign(raw_n, 0);
    try {
      qlz_decompress(src.data(), n, dst.data(), raw_n);
    } catch (const std::runtime_error&) {
      // Expected for most inputs.
    }
  }
}

TEST(QlzFuzz, CompressDecompressRoundTripsRandomAndRepetitiveData) {
  sim::Rng rng(sim::Rng::derive_seed(12, "qlz-rt"));
  std::vector<char> src;
  std::vector<char> packed;
  std::vector<char> unpacked;
  for (int round = 0; round < 300; ++round) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 2048));
    src.resize(n);
    const bool repetitive = round % 2 == 0;
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = repetitive ? static_cast<char>(i % 7)
                          : static_cast<char>(rng.uniform_int(0, 255));
    }
    packed.resize(qlz_max_compressed_size(n));
    const std::size_t packed_n = qlz_compress(src.data(), n, packed.data(), packed.size());
    ASSERT_GT(packed_n, 0u) << "round " << round;
    unpacked.assign(n, 0);
    qlz_decompress(packed.data(), packed_n, unpacked.data(), n);
    EXPECT_EQ(unpacked, src) << "round " << round;
  }
}

}  // namespace
}  // namespace qif::monitor
