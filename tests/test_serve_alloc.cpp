// Heap-allocation accounting for the serving hot path (the test_sim_alloc
// discipline): after one warm-up batch sizes every scratch matrix, request
// output vector, and the GEMM pad row, a steady-state submit -> batch ->
// reply cycle must perform zero heap allocations — at every batch size,
// including the N=1 sync path the OnlinePredictor runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <memory>
#include <new>
#include <vector>

#include "qif/serve/service.hpp"
#include "qif/sim/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

struct AllocWindow {
  std::uint64_t start = g_allocs.load(std::memory_order_relaxed);
  [[nodiscard]] std::uint64_t count() const {
    return g_allocs.load(std::memory_order_relaxed) - start;
  }
};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace qif::serve {
namespace {

constexpr int kD = 5;
constexpr int kS = 3;
constexpr std::size_t kFeat = kD * kS;

std::shared_ptr<const ServingModel> make_model() {
  auto m = std::make_shared<ServingModel>();
  m->kind = ServingModel::Kind::kKernel;
  ml::KernelNetConfig cfg;
  cfg.per_server_dim = kD;
  cfg.n_servers = kS;
  cfg.n_classes = 2;
  cfg.kernel_hidden = {8, 4};
  cfg.head_hidden = {6};
  cfg.seed = 31;
  m->kernel = ml::KernelNet(cfg);
  m->stdz = ml::Standardizer::from_moments(std::vector<double>(kD, 0.0),
                                           std::vector<double>(kD, 1.0));
  m->n_classes = 2;
  m->version = 1;
  return m;
}

TEST(ServeAllocations, SteadyStateBatchedServingIsAllocationFree) {
  const auto model = make_model();
  ServiceConfig cfg;
  cfg.max_batch = 8;
  InferenceService service(model, cfg);

  constexpr std::size_t kBatch = 8;
  sim::Rng rng(77);
  std::deque<Request> reqs(kBatch);
  std::vector<std::vector<double>> features(kBatch, std::vector<double>(kFeat));
  auto round = [&](int n) {
    for (int it = 0; it < n; ++it) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        for (auto& v : features[i]) v = rng.uniform(-2.0, 2.0);
        reqs[i].reset();
        reqs[i].features = features[i].data();
        reqs[i].n_features = kFeat;
        ASSERT_TRUE(service.try_submit(&reqs[i]));
      }
      ASSERT_EQ(service.step(), kBatch);
      for (auto& r : reqs) ASSERT_TRUE(r.ready());
    }
  };
  round(4);  // warm-up: scratch matrices, reply vectors, batch_, GEMM pad row
  const AllocWindow w;
  round(64);
  EXPECT_EQ(w.count(), 0u) << "batched serving allocated in steady state";
}

TEST(ServeAllocations, SteadyStateSingleRowSyncPathIsAllocationFree) {
  // The OnlinePredictor's per-window shape: one request, one batch.
  const auto model = make_model();
  PredictScratch scratch;
  Request r;
  Request* rp = &r;
  std::vector<double> features(kFeat);
  sim::Rng rng(78);
  auto round = [&](int n) {
    for (int it = 0; it < n; ++it) {
      for (auto& v : features) v = rng.uniform(-2.0, 2.0);
      r.reset();
      r.features = features.data();
      r.n_features = kFeat;
      predict_batch(*model, &rp, 1, scratch);
      ASSERT_TRUE(r.ready());
    }
  };
  round(4);
  const AllocWindow w;
  round(256);
  EXPECT_EQ(w.count(), 0u) << "N=1 sync path allocated in steady state";
}

TEST(ServeAllocations, HotSwapDoesNotAllocateOnTheServingThread) {
  // swap_model itself may allocate (it is the control plane); the serving
  // loop continuing across a swap must not.  Both bundles' scratch shapes
  // match, so the warm capacities carry over.
  const auto v1 = make_model();
  auto v2_mut = std::make_shared<ServingModel>(*v1);
  v2_mut->version = 2;
  const std::shared_ptr<const ServingModel> v2 = v2_mut;
  InferenceService service(v1, ServiceConfig{});
  sim::Rng rng(79);
  Request r;
  std::vector<double> features(kFeat);
  auto round = [&](int n) {
    for (int it = 0; it < n; ++it) {
      for (auto& v : features) v = rng.uniform(-2.0, 2.0);
      r.reset();
      r.features = features.data();
      r.n_features = kFeat;
      ASSERT_TRUE(service.try_submit(&r));
      ASSERT_EQ(service.step(), 1u);
    }
  };
  round(4);
  service.swap_model(v2);  // outside the window: control-plane cost
  const AllocWindow w;
  round(64);
  EXPECT_EQ(w.count(), 0u) << "serving across a hot swap allocated in steady state";
  EXPECT_EQ(r.model_version, 2u);
}

}  // namespace
}  // namespace qif::serve
