// Heap-allocation accounting for the campaign data plane.
//
// The acceptance bar for the columnar FeatureTable refactor: assembling a
// campaign dataset out of per-case shards costs O(shards) heap
// allocations, not O(windows).  With the old row-of-vectors layout every
// appended sample copied a features vector (one allocation per window);
// the columnar stitch computes the total row count, reserves each column
// once, and block-copies the shards in.  This binary replaces global
// operator new/delete with counting versions and measures the stitch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "qif/core/campaign.hpp"
#include "qif/monitor/features.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

struct AllocWindow {
  std::uint64_t start = g_allocs.load(std::memory_order_relaxed);
  [[nodiscard]] std::uint64_t count() const {
    return g_allocs.load(std::memory_order_relaxed) - start;
  }
};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace qif::core {
namespace {

CaseResult make_shard(int case_index, std::size_t rows) {
  CaseResult cr;
  cr.outcome.spec.seed = static_cast<std::uint64_t>(case_index);
  cr.outcome.windows = rows;
  cr.outcome.sampled_windows = rows;
  cr.outcome.mean_degradation = 1.5;
  cr.outcome.target_finished = true;
  cr.shard.set_shape(2, 3);
  cr.shard.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double* f = cr.shard.append_row(static_cast<std::int64_t>(i),
                                    static_cast<int>(i % 2), 1.0 + 0.001 * i);
    for (int j = 0; j < 6; ++j) f[j] = case_index * 100.0 + i + j;
  }
  return cr;
}

TEST(DataPlaneAllocations, StitchIsLinearInShardsNotWindows) {
  constexpr std::size_t kCases = 4;
  constexpr std::size_t kRowsPerCase = 500;
  std::vector<CaseResult> cases;
  cases.reserve(kCases);
  for (std::size_t c = 0; c < kCases; ++c) {
    cases.push_back(make_shard(static_cast<int>(c), kRowsPerCase));
  }

  const AllocWindow w;
  const CampaignResult result = stitch_case_results(std::move(cases));
  const std::uint64_t allocs = w.count();

  ASSERT_EQ(result.dataset.size(), kCases * kRowsPerCase);
  ASSERT_EQ(result.outcomes.size(), kCases);
  // A per-window cost would be >= 2000 allocations here.  The columnar
  // stitch needs the four column buffers, the outcomes vector, and a
  // handful of moves — a small constant per shard at most.
  EXPECT_LE(allocs, 8 + 4 * kCases)
      << "stitch allocated per window, not per shard";
  EXPECT_LT(allocs, kCases * kRowsPerCase / 10);
}

TEST(DataPlaneAllocations, BlockAppendReservesOnce) {
  // Dataset::append of a sized shard into a pre-reserved table allocates
  // nothing at all.
  CaseResult donor = make_shard(0, 256);
  monitor::Dataset dst;
  dst.set_shape(2, 3);
  dst.reserve(2 * donor.shard.size());
  dst.append(donor.shard);  // warm: columns already reserved

  const AllocWindow w;
  dst.append(donor.shard);
  EXPECT_EQ(w.count(), 0u) << "block append allocated despite reserved columns";
  EXPECT_EQ(dst.size(), 512u);
}

}  // namespace
}  // namespace qif::core
