// Tests for the attention-pooling network (the paper's future-work
// architecture direction) and the Tanh / squared-error building blocks.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "qif/ml/attention_net.hpp"

namespace qif::ml {
namespace {

AttentionNetConfig tiny_config() {
  AttentionNetConfig cfg;
  cfg.per_server_dim = 4;
  cfg.n_servers = 3;
  cfg.n_classes = 2;
  cfg.embed_dim = 8;
  cfg.attention_dim = 4;
  cfg.head_hidden = {6};
  cfg.seed = 9;
  return cfg;
}

TEST(Tanh, ForwardAndBackward) {
  Tanh tanh_layer;
  Matrix x(1, 3);
  x.data() = {0.0, 1.0, -2.0};
  const Matrix y = tanh_layer.forward(x);
  EXPECT_DOUBLE_EQ(y.at(0, 0), 0.0);
  EXPECT_NEAR(y.at(0, 1), std::tanh(1.0), 1e-12);
  EXPECT_NEAR(y.at(0, 2), std::tanh(-2.0), 1e-12);
  Matrix dy(1, 3);
  dy.data() = {1.0, 1.0, 1.0};
  const Matrix dx = tanh_layer.backward(dy);
  EXPECT_DOUBLE_EQ(dx.at(0, 0), 1.0);  // tanh'(0) = 1
  EXPECT_NEAR(dx.at(0, 1), 1.0 - std::tanh(1.0) * std::tanh(1.0), 1e-12);
}

TEST(SquaredError, LossAndGradient) {
  Matrix pred(2, 1);
  pred.at(0, 0) = 3.0;
  pred.at(1, 0) = -1.0;
  auto [loss, d] = SquaredError::loss_and_grad(pred, {1.0, -1.0});
  EXPECT_DOUBLE_EQ(loss, (4.0 + 0.0) / 2.0);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 2.0 * 2.0 / 2.0);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 0.0);
}

TEST(AttentionNet, OutputShape) {
  AttentionNet net(tiny_config());
  Matrix x(5, 12);
  const Matrix logits = net.forward_inference(x);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 2u);
}

TEST(AttentionNet, PermutationInvariantOverServers) {
  // The defining property vs. the kernel net: reordering the per-server
  // blocks leaves the prediction unchanged.
  AttentionNet net(tiny_config());
  sim::Rng rng(4);
  Matrix x(1, 12);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  Matrix perm = x;
  // Rotate the three 4-wide blocks.
  for (int s = 0; s < 3; ++s) {
    for (int f = 0; f < 4; ++f) {
      perm.at(0, ((s + 1) % 3) * 4 + f) = x.at(0, s * 4 + f);
    }
  }
  const Matrix a = net.forward_inference(x);
  const Matrix b = net.forward_inference(perm);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(a.at(0, j), b.at(0, j), 1e-10);
  }
}

TEST(AttentionNet, AttentionWeightsFormDistribution) {
  AttentionNet net(tiny_config());
  sim::Rng rng(5);
  std::vector<double> features(12);
  for (auto& v : features) v = rng.normal(0, 1);
  const auto alpha = net.attention_weights(features);
  ASSERT_EQ(alpha.size(), 3u);
  double sum = 0.0;
  for (const double a : alpha) {
    EXPECT_GT(a, 0.0);
    sum += a;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AttentionNet, GradientStepReducesLoss) {
  AttentionNet net(tiny_config());
  sim::Rng rng(6);
  Matrix x(6, 12);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  const std::vector<int> y = {0, 1, 0, 1, 1, 0};
  double first = 0.0, last = 0.0;
  for (int step = 1; step <= 150; ++step) {
    const Matrix logits = net.forward(x);
    auto [loss, d] = SoftmaxXent::loss_and_grad(logits, y, {});
    if (step == 1) first = loss;
    last = loss;
    net.backward(d);
    net.step(AdamParams{}, step);
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(AttentionNet, LearnsAnyServerHotRule) {
  AttentionNet net(tiny_config());
  sim::Rng rng(11);
  const std::size_t n = 256;
  Matrix x(n, 12);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    bool positive = false;
    for (int srv = 0; srv < 3; ++srv) {
      const bool hot = rng.chance(0.25);
      x.at(i, srv * 4) = hot ? rng.uniform(1.0, 3.0) : rng.uniform(-3.0, -1.0);
      for (int f = 1; f < 4; ++f) x.at(i, srv * 4 + f) = rng.normal(0, 1);
      positive = positive || hot;
    }
    y[i] = positive ? 1 : 0;
  }
  std::int64_t t = 0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    const Matrix logits = net.forward(x);
    auto [loss, d] = SoftmaxXent::loss_and_grad(logits, y, {});
    net.backward(d);
    net.step(AdamParams{}, ++t);
  }
  const auto pred = net.predict(x);
  int correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred[i] == y[i]) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(n * 0.92));
}

TEST(AttentionNet, LearnsToAttendToTheInformativeServer) {
  // End-to-end check of the hand-derived backward pass: when the label
  // depends only on one server's features, a correctly trained model must
  // route its attention there for positive samples.  A materially wrong
  // softmax/pooling jacobian cannot pass this.
  AttentionNetConfig cfg = tiny_config();
  AttentionNet net(cfg);
  sim::Rng rng(22);
  const std::size_t n = 256;
  Matrix x(n, 12);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool hot = rng.chance(0.5);
    for (int srv = 0; srv < 3; ++srv) {
      for (int f = 0; f < 4; ++f) x.at(i, srv * 4 + f) = rng.normal(0, 0.3);
    }
    // Only server 1 carries signal.
    x.at(i, 1 * 4 + 0) = hot ? 2.5 : -2.5;
    y[i] = hot ? 1 : 0;
  }
  std::int64_t t = 0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    const Matrix logits = net.forward(x);
    auto [loss, d] = SoftmaxXent::loss_and_grad(logits, y, {});
    net.backward(d);
    net.step(AdamParams{}, ++t);
  }
  // Accuracy first.
  const auto pred = net.predict(x);
  int correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred[i] == y[i]) ++correct;
  }
  EXPECT_GT(correct, static_cast<int>(n * 0.95));
  // Attention concentrates on server 1 for positive samples (averaged —
  // individual samples may tie when the noise dominates).
  double a1_sum = 0.0, other_sum = 0.0;
  int positives = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (y[i] != 1) continue;
    ++positives;
    std::vector<double> f(x.row(i), x.row(i) + 12);
    const auto alpha = net.attention_weights(f);
    a1_sum += alpha[1];
    other_sum += alpha[0] + alpha[2];
  }
  ASSERT_GT(positives, 0);
  EXPECT_GT(a1_sum / positives, other_sum / positives / 2.0)
      << "attention did not concentrate on the informative server";
}

TEST(AttentionNet, SaveLoadPreservesPredictions) {
  AttentionNet net(tiny_config());
  sim::Rng rng(7);
  Matrix x(4, 12);
  for (auto& v : x.data()) v = rng.normal(0, 1);
  const Matrix before = net.forward_inference(x);
  std::stringstream ss;
  net.save(ss);
  AttentionNet loaded;
  loaded.load(ss);
  EXPECT_EQ(loaded.config().embed_dim, 8);
  const Matrix after = loaded.forward_inference(x);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after.data()[i], before.data()[i], 1e-9);
  }
}

TEST(AttentionNet, RegressionHeadFitsDegradationLevels) {
  // The regression extension: one output node + squared error learns the
  // degradation magnitude, not just its bin.
  AttentionNetConfig cfg = tiny_config();
  cfg.n_classes = 1;
  AttentionNet net(cfg);
  sim::Rng rng(12);
  const std::size_t n = 128;
  Matrix x(n, 12);
  std::vector<double> target(n);
  for (std::size_t i = 0; i < n; ++i) {
    double level = 0.0;
    for (int srv = 0; srv < 3; ++srv) {
      const double load = rng.uniform(0.0, 2.0);
      x.at(i, srv * 4) = load;
      for (int f = 1; f < 4; ++f) x.at(i, srv * 4 + f) = rng.normal(0, 0.1);
      level += load;
    }
    target[i] = level;  // degradation ~ total load
  }
  std::int64_t t = 0;
  double last = 0.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    const Matrix pred = net.forward(x);
    auto [loss, d] = SquaredError::loss_and_grad(pred, target);
    last = loss;
    net.backward(d);
    net.step(AdamParams{}, ++t);
  }
  EXPECT_LT(last, 0.1);  // targets range ~[0, 6]; MSE 0.1 is a tight fit
}

TEST(AttentionNet, ForwardBatchMatchesForwardInferenceBitForBit) {
  // Same contract the kernel net pins: batched logits and attention
  // weights are bit-identical per row to forward_inference and to a
  // one-row forward_batch of that row alone.
  AttentionNet net(tiny_config());
  sim::Rng rng(19);
  for (const std::size_t batch : {1u, 3u, 6u, 11u}) {
    Matrix x(batch, 12);
    for (auto& v : x.data()) v = rng.normal(0, 1);
    AttentionNet::Scratch scratch;
    const MatView logits = net.forward_batch(x, scratch);
    ASSERT_EQ(logits.rows, batch);
    ASSERT_EQ(logits.cols, 2u);
    const Matrix want = net.forward_inference(x);
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t j = 0; j < 2u; ++j) {
        ASSERT_EQ(logits.at(i, j), want.at(i, j)) << "batch=" << batch << " row " << i;
      }
      AttentionNet::Scratch one_scratch;
      const MatView one = net.forward_batch(MatView(x.row(i), 1, 12), one_scratch);
      for (std::size_t j = 0; j < 2u; ++j) {
        ASSERT_EQ(one.at(0, j), logits.at(i, j)) << "batch=" << batch << " row " << i;
      }
      for (std::size_t s = 0; s < 3u; ++s) {
        ASSERT_EQ(one_scratch.alpha.data()[s], scratch.alpha.data()[i * 3 + s])
            << "batch=" << batch << " row " << i << " server " << s;
      }
    }
  }
}

}  // namespace
}  // namespace qif::ml
