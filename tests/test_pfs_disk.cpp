// Tests for the mechanical disk model: positioning costs, read priority,
// rate-limited write turns, anticipation, merging, and diskstats counters.
#include <gtest/gtest.h>

#include <vector>

#include "qif/pfs/disk.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {
namespace {

DiskParams no_jitter() {
  DiskParams p;
  p.service_jitter = 0.0;
  return p;
}

TEST(DiskModel, SequentialContinuationHasNoPositioningCost) {
  sim::Simulation s;
  DiskParams p = no_jitter();
  DiskModel disk(s, p, 1);
  sim::SimTime first = 0, second = 0;
  disk.submit(false, 0, 1 << 20, [&] { first = s.now(); });
  s.run_all();
  disk.submit(false, 1 << 20, 1 << 20, [&] { second = s.now(); });
  s.run_all();
  const double xfer_s = static_cast<double>(1 << 20) / p.media_rate_bps;
  // First request pays a seek from head position 0? offset==head(0): no.
  EXPECT_NEAR(sim::to_seconds(first), xfer_s, 1e-6);
  EXPECT_NEAR(sim::to_seconds(second - first), xfer_s, 1e-6);
}

TEST(DiskModel, FarRequestPaysFullSeekPlusRotation) {
  sim::Simulation s;
  DiskParams p = no_jitter();
  DiskModel disk(s, p, 1);
  sim::SimTime done = 0;
  disk.submit(false, 200ll << 30, 4096, [&] { done = s.now(); });
  s.run_all();
  const auto rot_half = sim::from_seconds(30.0 / p.rpm);
  const auto expected =
      p.avg_seek + rot_half + sim::from_seconds(4096.0 / p.media_rate_bps);
  EXPECT_NEAR(static_cast<double>(done), static_cast<double>(expected),
              static_cast<double>(expected) * 0.01);
}

TEST(DiskModel, NearRequestPaysShortSeek) {
  sim::Simulation s;
  DiskParams p = no_jitter();
  DiskModel disk(s, p, 1);
  sim::SimTime t1 = 0, t2 = 0;
  disk.submit(false, 0, 4096, [&] { t1 = s.now(); });
  s.run_all();
  disk.submit(false, 1 << 20, 4096, [&] { t2 = s.now(); });  // 1 MiB gap: near
  s.run_all();
  const auto near_cost = p.track_seek + sim::from_seconds(30.0 / p.rpm) / 2 +
                         sim::from_seconds(4096.0 / p.media_rate_bps);
  EXPECT_NEAR(static_cast<double>(t2 - t1), static_cast<double>(near_cost),
              static_cast<double>(near_cost) * 0.01);
}

TEST(DiskModel, InterleavedStreamsSlowerThanSolo) {
  // The seek-storm mechanism behind read-vs-read interference: two
  // *synchronous* sequential readers (each submits its next request only
  // when the previous completes, like a blocking rank) force a seek per
  // request, where one reader streams seek-free.
  auto run = [](int n_streams) {
    sim::Simulation s;
    DiskModel disk(s, no_jitter(), 1);
    const int per_stream = 32;
    int done = 0;
    std::function<void(int, int)> next = [&](int stream, int i) {
      if (i >= per_stream) return;
      const std::int64_t base = static_cast<std::int64_t>(stream) * (500ll << 30);
      disk.submit(false, base + (static_cast<std::int64_t>(i) << 20), 1 << 20,
                  [&, stream, i] {
                    ++done;
                    next(stream, i + 1);
                  });
    };
    for (int st = 0; st < n_streams; ++st) next(st, 0);
    s.run_all();
    EXPECT_EQ(done, n_streams * per_stream);
    // Per-stream completion rate (bytes per second of simulated time).
    return static_cast<double>(per_stream) * n_streams / sim::to_seconds(s.now());
  };
  const double solo_rate = run(1);
  const double duo_rate = run(2);
  // Aggregate throughput collapses: two interleaved streams move *less*
  // total data per second than one, despite having twice the demand.
  EXPECT_LT(duo_rate, 0.7 * solo_rate);
}

TEST(DiskModel, ReadsHavePriorityOverQueuedWrites) {
  sim::Simulation s;
  DiskParams p = no_jitter();
  p.anticipation_hold = 0;
  DiskModel disk(s, p, 1);
  std::vector<char> order;
  // Make the disk busy, then queue a write before a read.
  disk.submit(false, 0, 1 << 20, [] {});
  disk.submit(true, 10ll << 30, 1 << 20, [&] { order.push_back('w'); });
  disk.submit(false, 1 << 20, 1 << 20, [&] { order.push_back('r'); });
  s.run_all();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'r');
  EXPECT_EQ(order[1], 'w');
}

TEST(DiskModel, WriteTurnGuaranteesProgressUnderReadPressure) {
  sim::Simulation s;
  DiskParams p = no_jitter();
  p.anticipation_hold = 0;
  DiskModel disk(s, p, 1);
  bool write_done = false;
  disk.submit(true, 10ll << 30, 4096, [&] { write_done = true; });
  // Sustain a read stream far longer than the starvation limit.
  std::function<void(int)> reads = [&](int i) {
    if (i >= 200) return;
    disk.submit(false, static_cast<std::int64_t>(i) << 20, 1 << 20,
                [&reads, i] { reads(i + 1); });
  };
  reads(0);
  s.run_until(5 * sim::kSecond);
  EXPECT_TRUE(write_done);
}

TEST(DiskModel, BackMergeCoalescesContiguousWrites) {
  sim::Simulation s;
  DiskModel disk(s, no_jitter(), 1);
  int done = 0;
  // First request occupies the head; the rest queue up and merge.
  disk.submit(true, 100ll << 30, 4096, [&] { ++done; });
  disk.submit(true, 0, 4096, [&] { ++done; });
  disk.submit(true, 4096, 4096, [&] { ++done; });
  disk.submit(true, 8192, 4096, [&] { ++done; });
  s.run_all();
  EXPECT_EQ(done, 4);
  const DiskCounters c = disk.counters();
  EXPECT_EQ(c.write_merges, 2);
  EXPECT_EQ(c.writes_completed, 4);  // merged requests still count ops
}

TEST(DiskModel, FrontMergeCoalesces) {
  sim::Simulation s;
  DiskModel disk(s, no_jitter(), 1);
  disk.submit(false, 100ll << 30, 4096, [] {});  // busy
  disk.submit(false, 4096, 4096, [] {});
  disk.submit(false, 0, 4096, [] {});  // ends where the previous starts
  s.run_all();
  EXPECT_EQ(disk.counters().read_merges, 1);
}

TEST(DiskModel, MergeRespectsSizeCap) {
  sim::Simulation s;
  DiskParams p = no_jitter();
  p.max_merge_bytes = 8192;
  DiskModel disk(s, p, 1);
  disk.submit(true, 100ll << 30, 4096, [] {});  // busy
  disk.submit(true, 0, 8192, [] {});
  disk.submit(true, 8192, 4096, [] {});  // would exceed the cap
  s.run_all();
  EXPECT_EQ(disk.counters().write_merges, 0);
}

TEST(DiskModel, SectorCountersMatchBytes) {
  sim::Simulation s;
  DiskModel disk(s, no_jitter(), 1);
  disk.submit(false, 0, 1 << 20, [] {});
  disk.submit(true, 5ll << 30, 512 * 3, [] {});
  s.run_all();
  const DiskCounters c = disk.counters();
  EXPECT_EQ(c.sectors_read, (1 << 20) / 512);
  EXPECT_EQ(c.sectors_written, 3);
  EXPECT_EQ(c.reads_completed, 1);
  EXPECT_EQ(c.writes_completed, 1);
  EXPECT_EQ(c.queued_requests, 2);
}

TEST(DiskModel, BusyTicksApproximateServiceTime) {
  sim::Simulation s;
  DiskModel disk(s, no_jitter(), 1);
  disk.submit(false, 0, 15'000'000, [] {});  // 0.1 s of transfer
  s.run_all();
  const DiskCounters c = disk.counters();
  EXPECT_NEAR(sim::to_seconds(c.io_ticks), 0.1, 0.01);
  EXPECT_GE(c.weighted_ticks, c.io_ticks);
}

TEST(DiskModel, WeightedTicksGrowWithQueueDepth) {
  sim::Simulation s;
  DiskModel disk(s, no_jitter(), 1);
  // Three 0.1 s requests back to back: weighted ticks ~ 0.1*3 + 0.1*2 + 0.1.
  for (int i = 0; i < 3; ++i) {
    disk.submit(false, static_cast<std::int64_t>(i) * 15'000'000, 15'000'000, [] {});
  }
  s.run_all();
  EXPECT_NEAR(sim::to_seconds(disk.counters().weighted_ticks), 0.6, 0.05);
}

TEST(DiskModel, AnticipationHoldsWritesDuringReadGaps) {
  sim::Simulation s;
  DiskParams p = no_jitter();
  p.anticipation_hold = 5 * sim::kMillisecond;
  DiskModel disk(s, p, 1);
  sim::SimTime read2_done = 0;
  // Read completes; a write is pending; the next read arrives 1 ms later
  // (inside the hold) and must NOT wait behind the write.
  disk.submit(false, 0, 1 << 20, [&] {
    s.schedule_after(sim::kMillisecond, [&] {
      disk.submit(false, 1 << 20, 1 << 20, [&] { read2_done = s.now(); });
    });
  });
  disk.submit(true, 300ll << 30, 1 << 20, [] {});
  s.run_all();
  const double xfer_ms = 1e3 * static_cast<double>(1 << 20) / p.media_rate_bps;
  // read1 (~7 ms) + 1 ms gap + read2 (~7 ms, sequential continue).
  EXPECT_NEAR(sim::to_millis(read2_done), 2 * xfer_ms + 1.0, 1.0);
}

TEST(DiskModel, CountersMonotoneNonDecreasing) {
  sim::Simulation s;
  DiskModel disk(s, DiskParams{}, 3);
  sim::Rng rng(5);
  std::int64_t prev_reads = 0, prev_sectors = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      disk.submit(rng.chance(0.5), rng.uniform_int(0, 1ll << 38), 4096, [] {});
    }
    s.run_all();
    const DiskCounters c = disk.counters();
    EXPECT_GE(c.reads_completed, prev_reads);
    EXPECT_GE(c.sectors_read, prev_sectors);
    prev_reads = c.reads_completed;
    prev_sectors = c.sectors_read;
  }
}

// Property sweep: every submitted request completes exactly once, for any
// mix of sizes and directions.
class DiskCompletionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiskCompletionTest, AllRequestsCompleteExactlyOnce) {
  sim::Simulation s;
  DiskModel disk(s, DiskParams{}, GetParam());
  sim::Rng rng(GetParam());
  int completions = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    disk.submit(rng.chance(0.4), rng.uniform_int(0, 1ll << 39),
                rng.uniform_int(512, 2 << 20), [&] { ++completions; });
  }
  s.run_all();
  EXPECT_EQ(completions, n);
  EXPECT_EQ(disk.read_queue_depth(), 0u);
  EXPECT_EQ(disk.write_queue_depth(), 0u);
  EXPECT_FALSE(disk.busy());
  const DiskCounters c = disk.counters();
  EXPECT_EQ(c.reads_completed + c.writes_completed, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskCompletionTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace qif::pfs
