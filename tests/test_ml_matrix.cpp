// Tests for the matrix kernel: the three GEMM variants and reshaping.
#include <gtest/gtest.h>

#include <stdexcept>

#include "qif/ml/matrix.hpp"
#include "qif/sim/rng.hpp"

namespace qif::ml {
namespace {

Matrix fill(std::size_t r, std::size_t c, std::initializer_list<double> vals) {
  Matrix m(r, c);
  std::copy(vals.begin(), vals.end(), m.data().begin());
  return m;
}

TEST(Matrix, MatmulKnownValues) {
  const Matrix a = fill(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = fill(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = Matrix::matmul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154);
}

TEST(Matrix, MatmulTnEqualsTransposeTimesB) {
  sim::Rng rng(1);
  Matrix a(5, 3), b(5, 4);
  for (auto& v : a.data()) v = rng.normal(0, 1);
  for (auto& v : b.data()) v = rng.normal(0, 1);
  const Matrix c = Matrix::matmul_tn(a, b);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 4u);
  // Explicit transpose reference.
  Matrix at(3, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  const Matrix ref = Matrix::matmul(at, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-12);
  }
}

TEST(Matrix, MatmulNtEqualsATimesTranspose) {
  sim::Rng rng(2);
  Matrix a(4, 6), b(3, 6);
  for (auto& v : a.data()) v = rng.normal(0, 1);
  for (auto& v : b.data()) v = rng.normal(0, 1);
  const Matrix c = Matrix::matmul_nt(a, b);
  ASSERT_EQ(c.rows(), 4u);
  ASSERT_EQ(c.cols(), 3u);
  Matrix bt(6, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 6; ++j) bt.at(j, i) = b.at(i, j);
  }
  const Matrix ref = Matrix::matmul(a, bt);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-12);
  }
}

TEST(Matrix, IdentityIsNeutral) {
  Matrix id(3, 3);
  for (std::size_t i = 0; i < 3; ++i) id.at(i, i) = 1.0;
  const Matrix a = fill(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Matrix c = Matrix::matmul(a, id);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(c.data()[i], a.data()[i]);
}

TEST(Matrix, ReshapedPreservesDataRowMajor) {
  const Matrix a = fill(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = a.reshaped(3, 2);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(b.at(0, 1), 2);
  EXPECT_DOUBLE_EQ(b.at(1, 0), 3);
  EXPECT_DOUBLE_EQ(b.at(2, 1), 6);
}

TEST(Matrix, FillSetsEveryElement) {
  Matrix a(4, 4);
  a.fill(2.5);
  for (const double v : a.data()) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(Matrix, MatmulThrowsOnShapeMismatch) {
  // Regression: the guards were asserts, which vanish under NDEBUG and
  // turn dimension bugs into silent out-of-bounds reads.
  const Matrix a(2, 3);
  const Matrix b(4, 2);  // inner dims 3 vs 4
  EXPECT_THROW(Matrix::matmul(a, b), std::invalid_argument);
  const Matrix c(3, 2);  // a.rows 2 vs c.rows 3
  EXPECT_THROW(Matrix::matmul_tn(a, c), std::invalid_argument);
  const Matrix d(5, 4);  // a.cols 3 vs d.cols 4
  EXPECT_THROW(Matrix::matmul_nt(a, d), std::invalid_argument);
  // Matching shapes still work.
  EXPECT_NO_THROW(Matrix::matmul(a, Matrix(3, 5)));
  EXPECT_NO_THROW(Matrix::matmul_tn(a, Matrix(2, 5)));
  EXPECT_NO_THROW(Matrix::matmul_nt(a, Matrix(5, 3)));
}

}  // namespace
}  // namespace qif::ml
