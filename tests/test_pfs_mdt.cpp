// Tests for the metadata server: namespace semantics, stripe placement,
// journal group commit, and counters.
#include <gtest/gtest.h>

#include <vector>

#include "qif/pfs/mdt.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {
namespace {

struct MdtFixture : ::testing::Test {
  sim::Simulation s;
  MdtParams mp;
  DiskParams dp;
  MdtFixture() {
    mp.cpu_jitter = 0.0;
    dp.service_jitter = 0.0;
  }
  std::unique_ptr<MdtServer> make(std::int64_t n_osts = 6) {
    return std::make_unique<MdtServer>(s, mp, dp, 1, n_osts, 1 << 20);
  }
};

TEST_F(MdtFixture, CreateAssignsIdsAndLayouts) {
  auto mdt = make();
  MetaResult r1, r2;
  mdt->create("/a", 1, -1, [&](const MetaResult& r) { r1 = r; });
  mdt->create("/b", 0, -1, [&](const MetaResult& r) { r2 = r; });
  s.run_all();
  EXPECT_TRUE(r1.ok);
  EXPECT_TRUE(r2.ok);
  EXPECT_NE(r1.file, r2.file);
  ASSERT_NE(r1.layout, nullptr);
  ASSERT_NE(r2.layout, nullptr);
  EXPECT_EQ(r1.layout->osts().size(), 1u);
  EXPECT_EQ(r2.layout->osts().size(), 6u);  // 0 = stripe over all
}

TEST_F(MdtFixture, StripeHintPinsStartingOst) {
  auto mdt = make();
  MetaResult r;
  mdt->create("/pinned", 2, 4, [&](const MetaResult& x) { r = x; });
  s.run_all();
  ASSERT_NE(r.layout, nullptr);
  ASSERT_EQ(r.layout->osts().size(), 2u);
  EXPECT_EQ(r.layout->osts()[0], 4);
  EXPECT_EQ(r.layout->osts()[1], 5);
}

TEST_F(MdtFixture, StripeHintWrapsModuloOsts) {
  auto mdt = make();
  MetaResult r;
  mdt->create("/wrap", 1, 13, [&](const MetaResult& x) { r = x; });
  s.run_all();
  ASSERT_NE(r.layout, nullptr);
  EXPECT_EQ(r.layout->osts()[0], 13 % 6);
}

TEST_F(MdtFixture, CreateOfExistingPathReturnsSameFile) {
  auto mdt = make();
  MetaResult r1, r2;
  mdt->create("/dup", 1, -1, [&](const MetaResult& r) { r1 = r; });
  s.run_all();
  mdt->create("/dup", 1, -1, [&](const MetaResult& r) { r2 = r; });
  s.run_all();
  EXPECT_EQ(r1.file, r2.file);
}

TEST_F(MdtFixture, OpenAndStatFindCreatedFile) {
  auto mdt = make();
  MetaResult created, opened, statted;
  mdt->create("/f", 1, -1, [&](const MetaResult& r) { created = r; });
  s.run_all();
  mdt->note_size(created.file, 12345);
  mdt->open("/f", [&](const MetaResult& r) { opened = r; });
  mdt->stat("/f", [&](const MetaResult& r) { statted = r; });
  s.run_all();
  EXPECT_TRUE(opened.ok);
  EXPECT_EQ(opened.file, created.file);
  EXPECT_EQ(opened.size, 12345);
  EXPECT_TRUE(statted.ok);
  EXPECT_EQ(statted.size, 12345);
}

TEST_F(MdtFixture, OpenMissingFails) {
  auto mdt = make();
  MetaResult r;
  r.ok = true;
  mdt->open("/nope", [&](const MetaResult& x) { r = x; });
  s.run_all();
  EXPECT_FALSE(r.ok);
}

TEST_F(MdtFixture, StatOfKnownDirSucceeds) {
  auto mdt = make();
  MetaResult mk, st;
  mdt->mkdir("/dir", [&](const MetaResult& r) { mk = r; });
  s.run_all();
  mdt->stat("/dir", [&](const MetaResult& r) { st = r; });
  s.run_all();
  EXPECT_TRUE(mk.ok);
  EXPECT_TRUE(st.ok);
}

TEST_F(MdtFixture, UnlinkRemovesFile) {
  auto mdt = make();
  mdt->create("/gone", 1, -1, [](const MetaResult&) {});
  s.run_all();
  MetaResult un, reopened;
  mdt->unlink("/gone", [&](const MetaResult& r) { un = r; });
  s.run_all();
  mdt->open("/gone", [&](const MetaResult& r) { reopened = r; });
  s.run_all();
  EXPECT_TRUE(un.ok);
  EXPECT_FALSE(reopened.ok);
  EXPECT_EQ(mdt->files(), 0u);
}

TEST_F(MdtFixture, ModifyingOpsWaitForJournalCommit) {
  mp.commit_interval = 10 * sim::kMillisecond;
  auto mdt = make();
  sim::SimTime create_done = 0, stat_done = 0;
  mdt->create("/j", 1, -1, [&](const MetaResult&) { create_done = s.now(); });
  mdt->stat("/", [&](const MetaResult&) { stat_done = s.now(); });
  s.run_all();
  // The stat returns in microseconds; the create waits ~commit_interval.
  EXPECT_LT(sim::to_millis(stat_done), 2.0);
  EXPECT_GE(sim::to_millis(create_done), 9.0);
}

TEST_F(MdtFixture, GroupCommitBatchesManyCreates) {
  auto mdt = make();
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    mdt->create("/batch/f" + std::to_string(i), 1, -1,
                [&](const MetaResult&) { ++done; });
  }
  s.run_all();
  EXPECT_EQ(done, 100);
  const MdtCounters c = mdt->counters();
  EXPECT_EQ(c.modifying_ops, 100);
  // Group commit: far fewer journal commits than creates.
  EXPECT_LT(c.commits, 40);
  EXPECT_GT(c.commits, 0);
}

TEST_F(MdtFixture, BatchLimitForcesEarlyCommit) {
  mp.commit_interval = 10 * sim::kSecond;  // cadence effectively off
  mp.commit_batch_limit = 8;
  auto mdt = make();
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    mdt->create("/b/f" + std::to_string(i), 1, -1, [&](const MetaResult&) { ++done; });
  }
  s.run_until(sim::kSecond);
  EXPECT_EQ(done, 8);  // batch-full commit, not the 10 s cadence
}

TEST_F(MdtFixture, CountersTrackQueueAndOps) {
  auto mdt = make();
  for (int i = 0; i < 10; ++i) {
    mdt->stat("/", [](const MetaResult&) {});
  }
  s.run_all();
  const MdtCounters c = mdt->counters();
  EXPECT_EQ(c.queued_requests, 10);
  EXPECT_EQ(c.ops_completed, 10);
  EXPECT_EQ(c.modifying_ops, 0);
}

TEST_F(MdtFixture, ServiceConcurrencyBoundsParallelism) {
  mp.service_threads = 1;
  mp.cpu_stat = sim::kMillisecond;
  mp.attr_cache_miss = 0.0;
  auto mdt = make();
  std::vector<sim::SimTime> done;
  for (int i = 0; i < 4; ++i) {
    mdt->stat("/", [&](const MetaResult&) { done.push_back(s.now()); });
  }
  s.run_all();
  ASSERT_EQ(done.size(), 4u);
  // Single thread at 1 ms per op: completions ~1 ms apart.
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_NEAR(sim::to_millis(done[i] - done[i - 1]), 1.0, 0.2);
  }
}

TEST_F(MdtFixture, SharedDirectoryContentionCostsMore) {
  mp.service_threads = 2;
  mp.dirlock_penalty = 500 * sim::kMicrosecond;
  auto shared = make();
  sim::SimTime t_shared, t_private;
  {
    int pending = 64;
    for (int i = 0; i < 64; ++i) {
      shared->create("/same/f" + std::to_string(i), 1, -1,
                     [&](const MetaResult&) { --pending; });
    }
    s.run_all();
    EXPECT_EQ(pending, 0);
    t_shared = s.now();
  }
  sim::Simulation s2;
  MdtServer priv(s2, mp, dp, 1, 6, 1 << 20);
  {
    for (int i = 0; i < 64; ++i) {
      priv.create("/d" + std::to_string(i) + "/f", 1, -1, [](const MetaResult&) {});
    }
    s2.run_all();
    t_private = s2.now();
  }
  EXPECT_GT(t_shared, t_private);
}

}  // namespace
}  // namespace qif::pfs
