// Tests for trace replay (the `trace:FILE` workload) and the Daly
// checkpoint/restart generator (`ckpt:SIZE,BW,MTTI`).
//
// The load-bearing test is the closed-loop golden: dump a run's DXT trace,
// replay it with original timing against a fresh cluster, and require the
// replayed op stream to reproduce the dumped one bit-identically —
// timestamps included.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "qif/pfs/cluster.hpp"
#include "qif/sim/simulation.hpp"
#include "qif/trace/dxt.hpp"
#include "qif/trace/op_record.hpp"
#include "qif/workloads/checkpoint.hpp"
#include "qif/workloads/driver.hpp"
#include "qif/workloads/replay.hpp"

namespace qif::workloads {
namespace {

/// Runs `workload` solo (4 ranks over 2 nodes, the ExecutorFixture
/// topology) and returns the trace it produced.
trace::TraceLog run_workload(const std::string& workload) {
  sim::Simulation s;
  pfs::ClusterConfig cc;
  cc.seed = 13;
  pfs::Cluster cluster(s, cc);
  JobSpec spec;
  spec.workload = workload;
  spec.nodes = {0, 1};
  spec.procs_per_node = 2;
  spec.job = 0;
  spec.seed = 1;
  spec.scale = 0.2;
  JobInstance job(cluster, spec, /*loop=*/false);
  job.start(nullptr);
  s.run_all();
  return cluster.trace_log();
}

trace::OpRecord make_rec(pfs::Rank rank, std::int64_t op_index, pfs::OpType type,
                         sim::SimTime start, sim::SimTime end,
                         const std::string& path = {}) {
  trace::OpRecord r;
  r.rank = rank;
  r.op_index = op_index;
  r.type = type;
  r.start = start;
  r.end = end;
  r.path = path;
  r.bytes = 4096;
  return r;
}

std::string expect_replay_error(const trace::TraceLog& log, const ReplayOptions& opt) {
  try {
    (void)build_replay_programs(log, opt);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "replay accepted a defective trace";
  return {};
}

TEST(Replay, ClosedLoopGoldenReproducesTheDumpedOpStream) {
  const trace::TraceLog original = run_workload("enzo");
  ASSERT_FALSE(original.empty());

  const std::string path = ::testing::TempDir() + "qif_replay_golden.dxt";
  {
    std::ofstream out(path, std::ios::binary);
    trace::write_dxt(out, original);
  }

  const trace::TraceLog replayed = run_workload("trace:" + path + "@original");
  EXPECT_EQ(trace::trace_fingerprint(replayed), trace::trace_fingerprint(original));

  const auto want = original.sorted_for_job(0);
  const auto got = replayed.sorted_for_job(0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].rank, want[i].rank) << i;
    EXPECT_EQ(got[i].op_index, want[i].op_index) << i;
    EXPECT_EQ(got[i].type, want[i].type) << i;
    EXPECT_EQ(got[i].offset, want[i].offset) << i;
    EXPECT_EQ(got[i].bytes, want[i].bytes) << i;
    EXPECT_EQ(got[i].start, want[i].start) << i;  // original timing, exactly
    EXPECT_EQ(got[i].end, want[i].end) << i;
    EXPECT_EQ(got[i].path, want[i].path) << i;
    EXPECT_EQ(got[i].targets, want[i].targets) << i;
  }
}

TEST(Replay, GapsBecomeThinkOpsUnderEachTimingPolicy) {
  trace::TraceLog log;
  log.record(make_rec(0, 0, pfs::OpType::kWrite, 100, 200));
  log.record(make_rec(0, 1, pfs::OpType::kWrite, 500, 600));

  ReplayOptions original;
  const WorkloadProgram o = build_replay_programs(log, original);
  ASSERT_EQ(o.ranks.size(), 1u);
  const auto& body = o.ranks[0].body;
  // Leading gap (trace starts at t=100) plus the 300 ns inter-op gap.
  ASSERT_EQ(body.size(), 4u);
  EXPECT_EQ(body[0].kind, OpSpec::Kind::kThink);
  EXPECT_EQ(body[0].think, 100);
  EXPECT_EQ(body[1].kind, OpSpec::Kind::kWrite);
  EXPECT_EQ(body[2].kind, OpSpec::Kind::kThink);
  EXPECT_EQ(body[2].think, 300);
  EXPECT_EQ(body[3].kind, OpSpec::Kind::kWrite);

  ReplayOptions asap;
  asap.timing = ReplayTiming::kAsap;
  const WorkloadProgram a = build_replay_programs(log, asap);
  ASSERT_EQ(a.ranks[0].body.size(), 2u);
  for (const auto& op : a.ranks[0].body) EXPECT_NE(op.kind, OpSpec::Kind::kThink);

  ReplayOptions scaled;
  scaled.timing = ReplayTiming::kScale;
  scaled.gap_scale = 2.5;
  const WorkloadProgram sc = build_replay_programs(log, scaled);
  ASSERT_EQ(sc.ranks[0].body.size(), 4u);
  EXPECT_EQ(sc.ranks[0].body[0].think, 250);
  EXPECT_EQ(sc.ranks[0].body[2].think, 750);
}

TEST(Replay, ParsesTimingPoliciesFromTheWorkloadArg) {
  const auto [f1, o1] = parse_replay_arg("/tmp/a.dxt");
  EXPECT_EQ(f1, "/tmp/a.dxt");
  EXPECT_EQ(o1.timing, ReplayTiming::kOriginal);

  const auto [f2, o2] = parse_replay_arg("/tmp/a.dxt@asap");
  EXPECT_EQ(f2, "/tmp/a.dxt");
  EXPECT_EQ(o2.timing, ReplayTiming::kAsap);

  const auto [f3, o3] = parse_replay_arg("/tmp/a.dxt@scale=0.5");
  EXPECT_EQ(o3.timing, ReplayTiming::kScale);
  EXPECT_DOUBLE_EQ(o3.gap_scale, 0.5);

  EXPECT_THROW((void)parse_replay_arg("/tmp/a.dxt@bogus"), std::runtime_error);
  EXPECT_THROW((void)parse_replay_arg("/tmp/a.dxt@scale=0"), std::runtime_error);
  EXPECT_THROW((void)parse_replay_arg("/tmp/a.dxt@scale=x"), std::runtime_error);
  EXPECT_THROW((void)parse_replay_arg("@asap"), std::runtime_error);
}

TEST(Replay, DefectiveTracesAreNamedPrecisely) {
  const ReplayOptions opt;

  trace::TraceLog empty;
  EXPECT_EQ(expect_replay_error(empty, opt),
            "trace has no records for job 0 (trace is empty)");

  trace::TraceLog other_job;
  auto rec = make_rec(0, 0, pfs::OpType::kWrite, 0, 10);
  rec.job = 3;
  other_job.record(rec);
  EXPECT_EQ(expect_replay_error(other_job, opt),
            "trace has no records for job 0 (jobs present: 3)");

  trace::TraceLog skipped;
  skipped.record(make_rec(0, 0, pfs::OpType::kWrite, 0, 10));
  skipped.record(make_rec(0, 2, pfs::OpType::kWrite, 20, 30));
  EXPECT_EQ(expect_replay_error(skipped, opt),
            "trace job 0 rank 0 has op_index 2 where 1 was expected (truncated or "
            "filtered dump)");

  trace::TraceLog gap_rank;
  gap_rank.record(make_rec(1, 0, pfs::OpType::kWrite, 0, 10));
  EXPECT_EQ(expect_replay_error(gap_rank, opt), "trace job 0 is missing rank 0");

  // A v1 dump carries no paths: metadata ops cannot be re-issued.
  trace::TraceLog v1;
  v1.record(make_rec(0, 0, pfs::OpType::kStat, 0, 10, /*path=*/""));
  const std::string msg = expect_replay_error(v1, opt);
  EXPECT_NE(msg.find("DXT version 1 dumps cannot be replayed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("job 0, rank 0, op 0, type stat"), std::string::npos) << msg;
}

TEST(Daly, MatchesHandComputedIntervals) {
  // delta = 2 s, MTTI = 4 s: x = 1/4, so
  // tau = sqrt(16) * (1 + (1/3)(1/2) + (1/9)(1/4)) - 2 = 25/9.
  EXPECT_NEAR(daly_optimal_interval_s(2.0, 4.0), 25.0 / 9.0, 1e-9);
  // At/above the crossover (delta >= 2*MTTI) the optimum saturates at MTTI.
  EXPECT_DOUBLE_EQ(daly_optimal_interval_s(8.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(daly_optimal_interval_s(10.0, 4.0), 4.0);
  // Cheap dumps: tau -> sqrt(2*delta*M) as delta -> 0 (leading term).
  EXPECT_NEAR(daly_optimal_interval_s(1e-6, 3600.0), std::sqrt(2e-6 * 3600.0), 1e-3);
}

TEST(Checkpoint, ParsesSuffixedSizesAndTimes) {
  const CheckpointConfig a = parse_checkpoint_arg("4g,2g,3600");
  EXPECT_EQ(a.bytes, std::int64_t(4) << 30);
  EXPECT_DOUBLE_EQ(a.bandwidth_Bps, double(std::int64_t(2) << 30));
  EXPECT_DOUBLE_EQ(a.mtti_s, 3600.0);

  const CheckpointConfig b = parse_checkpoint_arg("64m,1g,2h");
  EXPECT_EQ(b.bytes, std::int64_t(64) << 20);
  EXPECT_DOUBLE_EQ(b.mtti_s, 7200.0);

  EXPECT_THROW((void)parse_checkpoint_arg("4g,2g"), std::runtime_error);
  EXPECT_THROW((void)parse_checkpoint_arg("0,1g,10"), std::runtime_error);
  EXPECT_THROW((void)parse_checkpoint_arg("4x,1g,10"), std::runtime_error);
  EXPECT_THROW((void)parse_checkpoint_arg("4g,1g,0"), std::runtime_error);
}

TEST(Checkpoint, ProgramHasRestartPrologueAndDalyPacedDumps) {
  CheckpointConfig cfg;
  cfg.bytes = std::int64_t(4) << 20;   // 4 MiB
  cfg.bandwidth_Bps = double(2 << 20);  // 2 MiB/s -> delta = 2 s
  cfg.mtti_s = 4.0;
  const RankProgram p = build_checkpoint_program(cfg, /*rank=*/1, /*job=*/2, /*scale=*/1.0);

  // Prologue: create + 2 writes + close, then open + 2 reads + close.
  ASSERT_EQ(p.prologue.size(), 8u);
  EXPECT_EQ(p.prologue[0].kind, OpSpec::Kind::kCreate);
  EXPECT_EQ(p.prologue[0].path, "/ckpt/job2.rank1.restart");
  EXPECT_EQ(p.prologue[0].stripes, 1);
  EXPECT_EQ(p.prologue[0].stripe_hint, 2 * 131 + 1);
  EXPECT_EQ(p.prologue[1].kind, OpSpec::Kind::kWrite);
  EXPECT_EQ(p.prologue[1].len, 2 << 20);
  EXPECT_EQ(p.prologue[4].kind, OpSpec::Kind::kOpen);
  EXPECT_EQ(p.prologue[5].kind, OpSpec::Kind::kRead);

  // Body: 4 cycles of think-tau + create + 2 writes + close.
  ASSERT_EQ(p.body.size(), 4u * 5u);
  EXPECT_EQ(p.body[0].kind, OpSpec::Kind::kThink);
  EXPECT_NEAR(static_cast<double>(p.body[0].think) / 1e9, 25.0 / 9.0, 1e-6);
  EXPECT_EQ(p.body[1].kind, OpSpec::Kind::kCreate);
  EXPECT_EQ(p.body[1].path, "/ckpt/job2.rank1.c0");
  EXPECT_EQ(p.body[2].offset, 0);
  EXPECT_EQ(p.body[3].offset, 2 << 20);
  EXPECT_EQ(p.body[4].kind, OpSpec::Kind::kClose);
  EXPECT_EQ(p.body[6].path, "/ckpt/job2.rank1.c1");
}

}  // namespace
}  // namespace qif::workloads
