// Tests for the .qwp workload-program IR: round-trip fidelity, the strict
// line/column diagnostics the reader promises, and a corruption fuzz pass
// asserting the checksum turns every single-byte defect into a detected
// error (this test also runs under ASan in tier1 alongside test_qds_fuzz).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "qif/workloads/program_io.hpp"
#include "qif/workloads/registry.hpp"

namespace qif::workloads {
namespace {

WorkloadProgram build_program(const std::string& name, int n_ranks, double scale) {
  WorkloadProgram prog;
  prog.workload = name;
  for (int r = 0; r < n_ranks; ++r) {
    prog.ranks.push_back(build_named_program(name, r, n_ranks, /*job=*/0, /*seed=*/1, scale));
  }
  return prog;
}

std::string serialize(const WorkloadProgram& prog) {
  std::ostringstream os;
  write_qwp(os, prog);
  return os.str();
}

WorkloadProgram parse(const std::string& text) {
  std::istringstream is(text);
  return read_qwp(is);
}

std::string expect_parse_error(const std::string& text) {
  try {
    (void)parse(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "parse accepted:\n" << text;
  return {};
}

TEST(Qwp, RoundTripsBuiltProgramsExactly) {
  for (const char* name : {"mdt-hard-write", "enzo", "ior-easy-read"}) {
    const WorkloadProgram prog = build_program(name, 3, 0.02);
    const std::string text = serialize(prog);
    const WorkloadProgram back = parse(text);
    EXPECT_EQ(back, prog) << name;
    // Serialization is canonical: a second trip is byte-identical.
    EXPECT_EQ(serialize(back), text) << name;
  }
}

TEST(Qwp, ChecksumWildcardSkipsVerification) {
  std::string text = serialize(build_program("mdt-easy-write", 1, 0.02));
  const auto pos = text.rfind("checksum ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.size() - pos, "checksum -\n");
  const WorkloadProgram back = parse(text);
  EXPECT_EQ(back.workload, "mdt-easy-write");
  ASSERT_EQ(back.ranks.size(), 1u);
  EXPECT_FALSE(back.ranks[0].body.empty());
}

TEST(Qwp, WriterRejectsUnserializablePrograms) {
  EXPECT_THROW(serialize(WorkloadProgram{}), std::invalid_argument);

  WorkloadProgram spacey;
  spacey.ranks.emplace_back();
  OpSpec stat;
  stat.kind = OpSpec::Kind::kStat;
  stat.path = "/has space";
  spacey.ranks[0].body.push_back(stat);
  EXPECT_THROW(serialize(spacey), std::invalid_argument);

  WorkloadProgram sloppy;
  sloppy.ranks.emplace_back();
  OpSpec close;
  close.kind = OpSpec::Kind::kClose;
  close.slot = 7;  // above max_slot = 0
  sloppy.ranks[0].body.push_back(close);
  EXPECT_THROW(serialize(sloppy), std::invalid_argument);
}

TEST(Qwp, DiagnosticsNameLineAndColumn) {
  EXPECT_EQ(expect_parse_error(""),
            "qwp: missing '# qwp qif <version>' header at line 1");
  EXPECT_EQ(expect_parse_error("ranks 1\n"),
            "qwp: missing '# qwp qif <version>' header at line 1");
  EXPECT_EQ(expect_parse_error("# qwp qif 2\n"),
            "qwp: unsupported version 2 at line 1 (reader supports 1)");
  EXPECT_EQ(expect_parse_error("# qwp qif 1\nbogus x\n"),
            "qwp: expected 'workload NAME' or 'ranks N', got 'bogus' at line 2");
  EXPECT_EQ(expect_parse_error("# qwp qif 1\nranks 0\n"),
            "qwp: bad rank count 0 at line 2");
  EXPECT_EQ(expect_parse_error("# qwp qif 1\nranks 2\nrank 1\n"),
            "qwp: rank sections out of order: got rank 1, expected rank 0 at line 3");
  EXPECT_EQ(expect_parse_error(
                "# qwp qif 1\nranks 1\nrank 0\nslots 0\nprologue\nbody\nfrob 1\n"),
            "qwp: unknown op 'frob' at line 7, column 1");
  EXPECT_EQ(expect_parse_error(
                "# qwp qif 1\nranks 1\nrank 0\nslots 0\nprologue\nbody\nclose 5\n"),
            "qwp: slot 5 out of range [0, 0] at line 7");
  EXPECT_EQ(expect_parse_error(
                "# qwp qif 1\nranks 1\nrank 0\nslots 0\nprologue\nbody\nchecksum XYZ\n"),
            "malformed qwp checksum cell: 'XYZ' at line 7, column 2");
  EXPECT_EQ(expect_parse_error("# qwp qif 1\nranks 1\nrank 0\nslots 0\nprologue\nbody\n"),
            "qwp: truncated program (missing checksum) at line 7");
  EXPECT_EQ(expect_parse_error(
                "# qwp qif 1\nranks 1\nrank 0\nslots 0\nprologue\nbody\nchecksum -\nextra\n"),
            "qwp: trailing garbage after checksum at line 8");

  const std::string mismatch = expect_parse_error(
      "# qwp qif 1\nranks 1\nrank 0\nslots 0\nprologue\nbody\n"
      "checksum 0123456789abcdef\n");
  EXPECT_NE(mismatch.find("qwp: checksum mismatch: file says 0123456789abcdef"),
            std::string::npos)
      << mismatch;
  EXPECT_NE(mismatch.find("(use 'checksum -' after hand-editing)"), std::string::npos)
      << mismatch;
}

TEST(Qwp, EveryByteFlipIsADetectedError) {
  const std::string text = serialize(build_program("mdt-easy-write", 2, 0.02));
  for (std::size_t i = 0; i < text.size(); ++i) {
    for (const char mask : {char(0x01), char(0x80)}) {
      std::string mutated = text;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      EXPECT_THROW((void)parse(mutated), std::runtime_error)
          << "flip of byte " << i << " with mask " << int(mask) << " went undetected";
    }
  }
}

TEST(Qwp, EveryTruncationIsADetectedError) {
  const std::string text = serialize(build_program("mdt-easy-write", 2, 0.02));
  // Every proper prefix must be rejected — except dropping only the final
  // newline, which getline cannot observe.
  for (std::size_t len = 0; len + 1 < text.size(); ++len) {
    EXPECT_THROW((void)parse(text.substr(0, len)), std::runtime_error)
        << "prefix of length " << len << " went undetected";
  }
  EXPECT_EQ(parse(text.substr(0, text.size() - 1)), parse(text));
}

}  // namespace
}  // namespace qif::workloads
