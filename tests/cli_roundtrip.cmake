# Drives the qif CLI through a full campaign -> train -> eval round trip.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run)
  execute_process(COMMAND ${ARGV} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()
run(${QIF_CLI} run mdt-easy-write --noise ior-easy-write --instances 4 --scale 0.5)
# --stream-out emits per-case .qds shards + a .qdm manifest while the
# campaign runs, and exits non-zero unless the shards merge back
# byte-identically to the in-RAM dataset.
run(${QIF_CLI} campaign amrex --richness 0.5 --stream-out shards --out data.csv)
if(NOT EXISTS ${WORK_DIR}/shards/amrex.qdm)
  message(FATAL_ERROR "campaign --stream-out did not seal a manifest")
endif()
run(${QIF_CLI} dataset info shards/amrex.qdm)
run(${QIF_CLI} train --data data.csv --out model.txt --epochs 20)
run(${QIF_CLI} eval --data data.csv --model model.txt)
# The streamed manifest feeds the chunked trainer directly.
run(${QIF_CLI} eval --data shards/amrex.qdm --model model.txt)
run(${QIF_CLI} dump-trace openpmd --scale 0.5 --out trace.dxt)
if(NOT EXISTS ${WORK_DIR}/model.txt OR NOT EXISTS ${WORK_DIR}/trace.dxt)
  message(FATAL_ERROR "CLI round trip did not produce its artifacts")
endif()
