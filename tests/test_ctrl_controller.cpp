// Tests for the mitigation controllers (qif::ctrl) and their scenario
// wiring: spec parsing round-trips, the token policy's flag/hysteresis
// state machine, the probing walk's determinism contract, and the
// scenario-level guarantees the PR pins — mitigated runs are deterministic,
// bit-identical across lane counts, and an out-of-scope (quiet) run is
// untouched down to the fingerprint.
#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <stdexcept>
#include <string>
#include <vector>

#include "qif/core/scenario.hpp"
#include "qif/ctrl/controller.hpp"
#include "qif/ctrl/mitigator.hpp"
#include "qif/trace/op_record.hpp"

namespace qif::ctrl {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing.
// ---------------------------------------------------------------------------

TEST(MitigationSpec, OffAndEmptyParseToEmptyConfig) {
  EXPECT_TRUE(parse_mitigation("").empty());
  EXPECT_TRUE(parse_mitigation("off").empty());
  EXPECT_EQ(to_spec(MitigationConfig{}), "off");
}

TEST(MitigationSpec, DefaultsRoundTripThroughCanonicalStrings) {
  MitigationConfig token;
  token.policy = Policy::kTokenBucket;
  EXPECT_EQ(to_spec(token), "token:rate=256,burst=8,cut=0.0625,flag=9,epoch=1,scope=noise");
  MitigationConfig probe;
  probe.policy = Policy::kProbing;
  EXPECT_EQ(to_spec(probe), "probe:init=8,min=1,max=8,step=1,tol=0.1,epoch=1,scope=noise");
  for (const char* spec : {"token", "probe",
                           "token:rate=128,burst=4,cut=0.125,flag=12.5,epoch=0.5,scope=all",
                           "probe:init=4,min=2,max=6,step=2,tol=0.2,epoch=2,scope=all"}) {
    const MitigationConfig cfg = parse_mitigation(spec);
    EXPECT_EQ(to_spec(parse_mitigation(to_spec(cfg))), to_spec(cfg)) << spec;
  }
}

TEST(MitigationSpec, ParseReadsEveryKnob) {
  const MitigationConfig t =
      parse_mitigation("token:rate=128,burst=4,cut=0.125,flag=12.5,epoch=0.5,scope=all");
  EXPECT_EQ(t.policy, Policy::kTokenBucket);
  EXPECT_EQ(t.scope, Scope::kAll);
  EXPECT_EQ(t.rate_bytes_per_s, 128ll << 20);
  EXPECT_EQ(t.burst_bytes, 4ll << 20);
  EXPECT_DOUBLE_EQ(t.cut, 0.125);
  EXPECT_DOUBLE_EQ(t.flag_ns_per_byte, 12.5);
  EXPECT_EQ(t.epoch, sim::kSecond / 2);

  const MitigationConfig p = parse_mitigation("probe:init=4,min=2,max=6,step=2,tol=0.2");
  EXPECT_EQ(p.policy, Policy::kProbing);
  EXPECT_EQ(p.probe_init, 4);
  EXPECT_EQ(p.probe_min, 2);
  EXPECT_EQ(p.probe_max, 6);
  EXPECT_EQ(p.probe_step, 2);
  EXPECT_DOUBLE_EQ(p.probe_tol, 0.2);
}

TEST(MitigationSpec, BadSpecsThrowWithTheOffendingToken) {
  const auto expect_bad = [](const std::string& spec) {
    try {
      (void)parse_mitigation(spec);
      FAIL() << "accepted bad spec '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("bad --mitigate spec"), std::string::npos)
          << spec;
    }
  };
  expect_bad("dial");                 // unknown policy
  expect_bad("token:rate=0");         // rate must be positive
  expect_bad("token:rate=fast");      // not a number
  expect_bad("token:cut=2");          // cut in (0, 1]
  expect_bad("token:flag=-1");
  expect_bad("token:junk=1");         // unknown key
  expect_bad("token:rate");           // missing '='
  expect_bad("token:epoch=0");
  expect_bad("token:scope=some");
  expect_bad("probe:min=0");          // need 1 <= min
  expect_bad("probe:min=5,max=3");    // min <= max
  expect_bad("probe:init=9");         // init within [min, max=8]
  expect_bad("probe:tol=1");          // tol in [0, 1)
  expect_bad("probe:step=0");
}

// ---------------------------------------------------------------------------
// Token policy: the DIAL-style flag state machine.
// ---------------------------------------------------------------------------

MitigationConfig token_config() {
  MitigationConfig cfg;
  cfg.policy = Policy::kTokenBucket;
  cfg.flag_ns_per_byte = 10.0;
  return cfg;
}

/// Feeds `n` chunk completions observing `ns_per_byte` on `port`.
void feed(Controller& c, int port, double ns_per_byte, int n) {
  const std::int64_t bytes = 1 << 20;
  const auto rtt = static_cast<sim::SimDuration>(ns_per_byte * static_cast<double>(bytes));
  for (int i = 0; i < n; ++i) c.on_chunk_complete(port, bytes, rtt);
}

TEST(TokenBucketController, FlagCutsRateAndHysteresisHoldsIt) {
  const MitigationConfig cfg = token_config();
  TokenBucketController c(cfg, /*n_ports=*/3, /*now=*/0);
  const std::int64_t healthy_rate = cfg.rate_bytes_per_s;
  const auto cut_rate =
      static_cast<std::int64_t>(static_cast<double>(healthy_rate) * cfg.cut);

  // Healthy latencies: unflagged, full rate.
  feed(c, 0, 5.0, 8);
  c.on_epoch(sim::kSecond);
  EXPECT_FALSE(c.epochs().back().flagged);
  EXPECT_EQ(c.bucket().rate(), healthy_rate);

  // Contended latencies push the EWMA over the threshold: flagged, rate cut.
  feed(c, 0, 20.0, 8);
  c.on_epoch(2 * sim::kSecond);
  EXPECT_TRUE(c.epochs().back().flagged);
  EXPECT_EQ(c.bucket().rate(), cut_rate);

  // Hysteresis: easing below the threshold but above half of it stays hot.
  feed(c, 0, 7.0, 16);
  c.on_epoch(3 * sim::kSecond);
  EXPECT_TRUE(c.epochs().back().flagged);
  EXPECT_EQ(c.bucket().rate(), cut_rate);

  // Cooling below threshold/2 unflags and restores the healthy rate.
  feed(c, 0, 1.0, 16);
  c.on_epoch(4 * sim::kSecond);
  EXPECT_FALSE(c.epochs().back().flagged);
  EXPECT_EQ(c.bucket().rate(), healthy_rate);
}

TEST(TokenBucketController, AnyHotPortFlagsTheClient) {
  TokenBucketController c(token_config(), 3, 0);
  feed(c, 0, 4.0, 8);   // port 0 healthy
  feed(c, 2, 30.0, 8);  // port 2 contended
  c.on_epoch(sim::kSecond);
  EXPECT_TRUE(c.epochs().back().flagged);
}

TEST(TokenBucketController, ExternalFlagBoardOverridesSelfSignal) {
  const MitigationConfig cfg = token_config();
  TokenBucketController c(cfg, 3, 0);
  FlagBoard board;
  board.flags = {0, 1, 0};
  c.set_flag_board(&board);

  // No samples at all — the board alone drives the decision.
  c.on_epoch(sim::kSecond);
  EXPECT_TRUE(c.epochs().back().flagged);
  EXPECT_LT(c.bucket().rate(), cfg.rate_bytes_per_s);

  board.flags = {0, 0, 0};
  // Even with hot self-samples the (clear) board wins.
  feed(c, 0, 50.0, 8);
  c.on_epoch(2 * sim::kSecond);
  EXPECT_FALSE(c.epochs().back().flagged);
  EXPECT_EQ(c.bucket().rate(), cfg.rate_bytes_per_s);
}

TEST(TokenBucketController, ThrottleAccountingLandsInTheEpochRow) {
  MitigationConfig cfg = token_config();
  cfg.rate_bytes_per_s = 1 << 20;
  cfg.burst_bytes = 1 << 20;
  TokenBucketController c(cfg, 1, 0);
  EXPECT_EQ(c.concurrency_cap(), INT_MAX);  // rate-metered, never count-capped

  // The initial burst admits immediately; the next chunk must wait.
  EXPECT_EQ(c.acquire(0, 1 << 20, 0), 0);
  const sim::SimDuration wait = c.acquire(0, 1 << 20, 0);
  EXPECT_EQ(wait, sim::kSecond);  // full deficit at 1 MiB/s
  c.on_epoch(sim::kSecond);
  const EpochRow& row = c.epochs().back();
  EXPECT_EQ(row.admitted_bytes, 1 << 20);
  EXPECT_EQ(row.throttle_waits, 1);
  EXPECT_EQ(row.throttled_bytes, 1 << 20);
  EXPECT_EQ(row.throttle_delay, sim::kSecond);
}

// ---------------------------------------------------------------------------
// Probing policy: deterministic exploration.
// ---------------------------------------------------------------------------

MitigationConfig probe_config() {
  MitigationConfig cfg;
  cfg.policy = Policy::kProbing;
  return cfg;
}

/// Runs `epochs` observed epochs against a synthetic throughput curve
/// (bytes completed as a function of the level in effect) and returns the
/// level sequence the walk produced.
std::vector<int> walk(std::uint64_t seed, int epochs,
                      const std::vector<std::int64_t>& bytes_at_level) {
  ProbingController c(probe_config(), 1, 0, seed);
  std::vector<int> levels;
  for (int e = 0; e < epochs; ++e) {
    const int level = c.concurrency_cap();
    const std::int64_t bytes = bytes_at_level[static_cast<std::size_t>(level)];
    c.on_chunk_complete(0, bytes, sim::kMillisecond);
    c.on_epoch((e + 1) * sim::kSecond);
    levels.push_back(c.concurrency_cap());
  }
  return levels;
}

TEST(ProbingController, LevelStaysWithinBoundsAndNeverDelays) {
  ProbingController c(probe_config(), 1, 0, 7);
  EXPECT_EQ(c.acquire(0, 1 << 20, 0), 0);  // probing caps, never queues
  std::vector<std::int64_t> curve(9, 4 << 20);
  for (int e = 0; e < 200; ++e) {
    const int level = c.concurrency_cap();
    ASSERT_GE(level, 1);
    ASSERT_LE(level, 8);
    c.on_chunk_complete(0, curve[static_cast<std::size_t>(level)], sim::kMillisecond);
    c.on_epoch((e + 1) * sim::kSecond);
  }
  EXPECT_GE(c.stable_level(), 1);
  EXPECT_LE(c.stable_level(), 8);
}

TEST(ProbingController, WalkIsDeterministicPerSeed) {
  // Saturating curve: levels past 3 buy nothing.
  std::vector<std::int64_t> curve;
  for (int level = 0; level <= 8; ++level) {
    curve.push_back(static_cast<std::int64_t>(std::min(level, 3)) * (2 << 20));
  }
  const std::vector<int> a = walk(11, 64, curve);
  EXPECT_EQ(a, walk(11, 64, curve));   // same seed: identical exploration
  EXPECT_NE(a, walk(12, 64, curve));   // the direction stream is seed-keyed
}

TEST(ProbingController, IdleEpochsFreezeTheWalkAndTheRngStream) {
  // Interleaving idle (no-traffic) epochs must not advance the exploration
  // RNG or move the level: the observed-epoch level sequence is identical
  // with and without them.  This is what keeps think-time phases from
  // desynchronizing the walk between otherwise identical runs.
  std::vector<std::int64_t> curve;
  for (int level = 0; level <= 8; ++level) {
    curve.push_back(static_cast<std::int64_t>(std::min(level, 3)) * (2 << 20));
  }
  ProbingController busy(probe_config(), 1, 0, 21);
  ProbingController lazy(probe_config(), 1, 0, 21);
  std::vector<int> busy_levels;
  std::vector<int> lazy_levels;
  sim::SimTime t = 0;
  for (int e = 0; e < 48; ++e) {
    const std::int64_t bytes = curve[static_cast<std::size_t>(busy.concurrency_cap())];
    busy.on_chunk_complete(0, bytes, sim::kMillisecond);
    busy.on_epoch(t += sim::kSecond);
    busy_levels.push_back(busy.concurrency_cap());

    const int before = lazy.concurrency_cap();
    lazy.on_epoch(t);  // idle epoch: no evidence, no move, no draw
    EXPECT_EQ(lazy.concurrency_cap(), before);
    lazy.on_chunk_complete(0, curve[static_cast<std::size_t>(lazy.concurrency_cap())],
                           sim::kMillisecond);
    lazy.on_epoch(t);
    lazy_levels.push_back(lazy.concurrency_cap());
  }
  EXPECT_EQ(busy_levels, lazy_levels);
  EXPECT_EQ(busy.epochs().size() * 2, lazy.epochs().size());
}

// ---------------------------------------------------------------------------
// Scenario wiring: the Mitigator end to end.
// ---------------------------------------------------------------------------

core::ScenarioConfig contended_scenario() {
  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(17);
  cfg.target.workload = "ior-easy-write";
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = 17;
  cfg.monitors = false;
  cfg.horizon = 120 * sim::kSecond;
  core::InterferenceSpec noise;
  noise.workload = "ior-easy-read";
  noise.nodes = {2, 3, 4, 5, 6};
  noise.instances = 15;
  noise.seed = 77;
  cfg.interference = noise;
  return cfg;
}

TEST(Mitigator, RejectsAnEmptyConfig) {
  sim::Simulation s;
  pfs::ClusterConfig cc;
  pfs::Cluster cluster(s, cc);
  EXPECT_THROW(Mitigator(cluster, MitigationConfig{}), std::invalid_argument);
}

TEST(MitigatedScenario, DeterministicAndDistinctFromOff) {
  const core::ScenarioConfig off_cfg = contended_scenario();
  core::ScenarioConfig on_cfg = contended_scenario();
  on_cfg.mitigation = parse_mitigation("token");

  const core::ScenarioResult off = core::run_scenario(off_cfg);
  const core::ScenarioResult on1 = core::run_scenario(on_cfg);
  const core::ScenarioResult on2 = core::run_scenario(on_cfg);

  const std::uint64_t off_fp = trace::trace_fingerprint(off.trace);
  const std::uint64_t on_fp = trace::trace_fingerprint(on1.trace);
  EXPECT_EQ(on_fp, trace::trace_fingerprint(on2.trace));
  EXPECT_NE(on_fp, off_fp) << "token policy throttled nothing in a contended run";

  ASSERT_TRUE(on1.ctrl.active());
  EXPECT_EQ(on1.ctrl.policy, to_spec(on_cfg.mitigation));
  EXPECT_GT(on1.ctrl.controllers, 0);
  EXPECT_GT(on1.ctrl.throttle_waits, 0);
  EXPECT_GT(on1.ctrl.throttle_delay_s, 0.0);
  EXPECT_GT(on1.ctrl.victim_p99_ms, 0.0);
  EXPECT_FALSE(on1.ctrl.windows.empty());
  // The off run reports an inactive default.
  EXPECT_FALSE(off.ctrl.active());
}

TEST(MitigatedScenario, ThrottlingAggressorsShortensTheVictimPhase) {
  // The headline effect the paper's mitigation chapter is after: cutting
  // the aggressors' admission rate during flagged windows gives the
  // monitored job its bandwidth back.
  const core::ScenarioConfig off_cfg = contended_scenario();
  core::ScenarioConfig on_cfg = contended_scenario();
  // A lower healthy rate keeps the aggressors metered between flagged
  // windows too — the strongest of the swept settings for this scenario.
  on_cfg.mitigation = parse_mitigation("token:rate=64");
  const core::ScenarioResult off = core::run_scenario(off_cfg);
  const core::ScenarioResult on = core::run_scenario(on_cfg);
  ASSERT_TRUE(off.target_finished);
  ASSERT_TRUE(on.target_finished);
  EXPECT_LT(on.target_body_duration(), off.target_body_duration());
}

TEST(MitigatedScenario, BitIdenticalAcrossLaneCounts) {
  // The controller loop lives on the owning client's lane, so the mitigated
  // trace fingerprints must agree at every valid lane count (testbed: 3 OSS
  // groups = up to 3 data lanes), for both policies.
  for (const char* policy : {"token", "probe"}) {
    core::ScenarioConfig cfg = contended_scenario();
    cfg.mitigation = parse_mitigation(policy);
    cfg.lanes = 1;
    const std::uint64_t fp1 =
        trace::trace_fingerprint(core::run_scenario(cfg).trace);
    for (int lanes = 2; lanes <= 3; ++lanes) {
      cfg.lanes = lanes;
      EXPECT_EQ(trace::trace_fingerprint(core::run_scenario(cfg).trace), fp1)
          << policy << " lanes " << lanes;
    }
  }
}

TEST(MitigatedScenario, QuietRunUnderNoiseScopeIsUntouched) {
  // Scope kNoise gates only background jobs.  A run with no interference
  // has no gated clients: zero controllers, zero extra events, and a
  // fingerprint equal to the unmitigated run's.
  core::ScenarioConfig cfg = contended_scenario();
  cfg.interference.reset();
  const std::uint64_t off_fp =
      trace::trace_fingerprint(core::run_scenario(cfg).trace);
  cfg.mitigation = parse_mitigation("token");
  const core::ScenarioResult on = core::run_scenario(cfg);
  EXPECT_EQ(trace::trace_fingerprint(on.trace), off_fp);
  EXPECT_EQ(on.ctrl.controllers, 0);
  EXPECT_FALSE(on.ctrl.active());
}

}  // namespace
}  // namespace qif::ctrl
