// Tests for the contended-transport primitives: the processor-sharing
// FairLink and the FIFO Pipe.
#include <gtest/gtest.h>

#include <vector>

#include "qif/sim/fair_link.hpp"
#include "qif/sim/pipe.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::sim {
namespace {

TEST(FairLink, SingleTransferTakesBytesOverRate) {
  Simulation s;
  FairLink link(s, 1e9);  // 1 GB/s
  SimTime done_at = -1;
  link.transfer(500'000'000, [&] { done_at = s.now(); });
  s.run_all();
  EXPECT_NEAR(to_seconds(done_at), 0.5, 1e-6);
  EXPECT_EQ(link.bytes_delivered(), 500'000'000);
  EXPECT_EQ(link.active(), 0u);
}

TEST(FairLink, TwoEqualTransfersShareAndFinishTogether) {
  Simulation s;
  FairLink link(s, 1e9);
  SimTime a = -1, b = -1;
  link.transfer(100'000'000, [&] { a = s.now(); });
  link.transfer(100'000'000, [&] { b = s.now(); });
  s.run_all();
  // Each gets half the rate: 0.2 s instead of 0.1 s.
  EXPECT_NEAR(to_seconds(a), 0.2, 1e-6);
  EXPECT_NEAR(to_seconds(b), 0.2, 1e-6);
}

TEST(FairLink, ShortTransferDelaysLongOneByItsShare) {
  Simulation s;
  FairLink link(s, 1e9);
  SimTime small_done = -1, big_done = -1;
  link.transfer(900'000'000, [&] { big_done = s.now(); });
  link.transfer(100'000'000, [&] { small_done = s.now(); });
  s.run_all();
  // Shared until the small one drains at 0.2 s (100MB at 500MB/s); the big
  // one then has 800MB left at full rate: 0.2 + 0.8 = 1.0 s.
  EXPECT_NEAR(to_seconds(small_done), 0.2, 1e-5);
  EXPECT_NEAR(to_seconds(big_done), 1.0, 1e-5);
}

TEST(FairLink, LateArrivalSharesRemainder) {
  Simulation s;
  FairLink link(s, 1e9);
  SimTime first = -1, second = -1;
  link.transfer(1'000'000'000, [&] { first = s.now(); });
  s.schedule_at(from_seconds(0.5), [&] {
    link.transfer(250'000'000, [&] { second = s.now(); });
  });
  s.run_all();
  // First has 500MB left at t=0.5; both share: second drains its 250MB at
  // 0.5 + 0.5 = 1.0 s; first finishes its remaining 250MB at 1.25 s.
  EXPECT_NEAR(to_seconds(second), 1.0, 1e-5);
  EXPECT_NEAR(to_seconds(first), 1.25, 1e-5);
}

TEST(FairLink, ZeroByteTransferCompletes) {
  Simulation s;
  FairLink link(s, 1e9);
  bool done = false;
  link.transfer(0, [&] { done = true; });
  s.run_all();
  EXPECT_TRUE(done);
}

TEST(FairLink, PerFlowRateReflectsActiveCount) {
  Simulation s;
  FairLink link(s, 1e9);
  link.transfer(1 << 30, nullptr);
  link.transfer(1 << 30, nullptr);
  EXPECT_EQ(link.active(), 2u);
  EXPECT_NEAR(link.per_flow_rate(), 0.5e9, 1.0);
}

TEST(FairLink, ManyTransfersAllComplete) {
  Simulation s;
  FairLink link(s, 1e9);
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    link.transfer(1'000'000 + i, [&] { ++done; });
  }
  s.run_all();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(link.active(), 0u);
}

TEST(FairLink, CallbackCanStartNewTransfer) {
  Simulation s;
  FairLink link(s, 1e9);
  SimTime second_done = -1;
  link.transfer(100'000'000, [&] {
    link.transfer(100'000'000, [&] { second_done = s.now(); });
  });
  s.run_all();
  EXPECT_NEAR(to_seconds(second_done), 0.2, 1e-5);
}

TEST(Pipe, SerializesAtRatePlusLatency) {
  Simulation s;
  Pipe pipe(s, 1e9, 100 * kMicrosecond);
  SimTime done = -1;
  pipe.send(1'000'000, [&] { done = s.now(); });
  s.run_all();
  // 1 ms serialization + 0.1 ms latency.
  EXPECT_NEAR(to_millis(done), 1.1, 1e-3);
  EXPECT_EQ(pipe.bytes_sent(), 1'000'000);
}

TEST(Pipe, FifoOrderPreserved) {
  Simulation s;
  Pipe pipe(s, 1e9, 0);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pipe.send(1000, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Pipe, BackToBackMessagesQueueSerially) {
  Simulation s;
  Pipe pipe(s, 1e6, 0);  // 1 MB/s: 1 ms per 1000 bytes
  std::vector<SimTime> times;
  for (int i = 0; i < 3; ++i) {
    pipe.send(1000, [&] { times.push_back(s.now()); });
  }
  s.run_all();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(to_millis(times[0]), 1.0, 0.01);
  EXPECT_NEAR(to_millis(times[1]), 2.0, 0.01);
  EXPECT_NEAR(to_millis(times[2]), 3.0, 0.01);
}

TEST(Pipe, PropagationOverlapsNextSerialization) {
  Simulation s;
  Pipe pipe(s, 1e6, 5 * kMillisecond);  // long latency
  std::vector<SimTime> times;
  pipe.send(1000, [&] { times.push_back(s.now()); });
  pipe.send(1000, [&] { times.push_back(s.now()); });
  s.run_all();
  ASSERT_EQ(times.size(), 2u);
  // Cut-through: second message serializes during the first's propagation.
  EXPECT_NEAR(to_millis(times[0]), 6.0, 0.01);
  EXPECT_NEAR(to_millis(times[1]), 7.0, 0.01);
}

TEST(Pipe, QueueDepthTracksBacklog) {
  Simulation s;
  Pipe pipe(s, 1e6, 0);
  pipe.send(1000, nullptr);
  pipe.send(1000, nullptr);
  pipe.send(1000, nullptr);
  EXPECT_EQ(pipe.queue_depth(), 3u);
  s.run_all();
  EXPECT_EQ(pipe.queue_depth(), 0u);
}

TEST(Pipe, NegativeSizeClampedToZero) {
  Simulation s;
  Pipe pipe(s, 1e6, 0);
  bool done = false;
  pipe.send(-5, [&] { done = true; });
  s.run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(pipe.bytes_sent(), 0);
}

// Property: total FairLink throughput equals capacity regardless of the mix.
class FairLinkConservation : public ::testing::TestWithParam<int> {};

TEST_P(FairLinkConservation, AggregateRateEqualsCapacity) {
  Simulation s;
  FairLink link(s, 1e9);
  const int n = GetParam();
  const std::int64_t each = 100'000'000;
  SimTime last = 0;
  int done = 0;
  for (int i = 0; i < n; ++i) {
    link.transfer(each, [&] {
      ++done;
      last = s.now();
    });
  }
  s.run_all();
  EXPECT_EQ(done, n);
  // Equal-size concurrent transfers all finish at n * each / capacity.
  EXPECT_NEAR(to_seconds(last), static_cast<double>(n) * each / 1e9, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Flows, FairLinkConservation, ::testing::Values(1, 2, 3, 8, 32));

}  // namespace
}  // namespace qif::sim
