# Drives the qif CLI's --mitigate surface end to end:
#   - omitting --mitigate and passing `--mitigate off` produce identical
#     fingerprints (the off path is inert);
#   - a mitigated contended run really differs from the off run, and its
#     noisy fingerprint is identical at every --lanes count and across
#     campaign --jobs counts (the bit-identity contract);
#   - malformed specs are rejected with a non-zero exit and a clear error.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_ok outvar)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

function(run_fail_matching pattern)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "command unexpectedly succeeded: ${ARGN}\n${out}")
  endif()
  if(NOT "${out}${err}" MATCHES "${pattern}")
    message(FATAL_ERROR "command failed without '${pattern}': ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

function(extract_noisy_fp outvar text)
  if(NOT "${text}" MATCHES "noisy trace fp: ([0-9a-f]+)")
    message(FATAL_ERROR "no noisy trace fingerprint in output:\n${text}")
  endif()
  set(${outvar} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

set(RUN ${QIF_CLI} run ior-easy-write --noise ior-easy-read --instances 15
        --seed 17)

# `--mitigate off` is byte-for-byte the absent-flag path.
run_ok(plain ${RUN})
run_ok(explicit_off ${RUN} --mitigate off)
extract_noisy_fp(fp_plain "${plain}")
extract_noisy_fp(fp_off "${explicit_off}")
if(NOT fp_off STREQUAL fp_plain)
  message(FATAL_ERROR "--mitigate off fp ${fp_off} != absent-flag fp ${fp_plain}")
endif()

# A mitigated contended run throttles something: different fingerprint,
# and the CLI reports the controller telemetry line.
run_ok(mitigated ${RUN} --mitigate token)
extract_noisy_fp(fp_on "${mitigated}")
if(fp_on STREQUAL fp_off)
  message(FATAL_ERROR "--mitigate token left the noisy trace untouched (fp ${fp_on})")
endif()
if(NOT "${mitigated}" MATCHES "mitigation token:")
  message(FATAL_ERROR "no mitigation telemetry line in output:\n${mitigated}")
endif()

# Mitigated fingerprints are bit-identical at every lane count, for both
# policies (testbed shape: 3 OSS groups = up to 3 data lanes).
foreach(policy token probe)
  run_ok(lane1 ${RUN} --mitigate ${policy} --lanes 1)
  extract_noisy_fp(lfp1 "${lane1}")
  foreach(lanes 2 3)
    run_ok(lanen ${RUN} --mitigate ${policy} --lanes ${lanes})
    extract_noisy_fp(lfpn "${lanen}")
    if(NOT lfpn STREQUAL lfp1)
      message(FATAL_ERROR
        "--mitigate ${policy} --lanes ${lanes} fp ${lfpn} != --lanes 1 fp ${lfp1}")
    endif()
  endforeach()
endforeach()

# Campaign twins: the mitigated dataset is identical at --jobs 1 and 4, and
# the comparison table shows both sides.
set(CAMPAIGN ${QIF_CLI} campaign custom --workload ior-easy-write
    --richness 0.25 --seed 7 --mitigate token)
run_ok(camp1 ${CAMPAIGN} --jobs 1 --out mitigate_j1.csv)
run_ok(camp4 ${CAMPAIGN} --jobs 4 --out mitigate_j4.csv)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/mitigate_j1.csv ${WORK_DIR}/mitigate_j4.csv
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "mitigated campaign CSV differs between --jobs 1 and --jobs 4")
endif()
if(NOT "${camp1}" MATCHES "mitigation on-vs-off")
  message(FATAL_ERROR "no on-vs-off comparison table in campaign output:\n${camp1}")
endif()

# Malformed specs are rejected with the offending token named.
run_fail_matching("bad --mitigate spec" ${QIF_CLI} run ior-easy-write --mitigate dial)
run_fail_matching("bad --mitigate spec" ${QIF_CLI} run ior-easy-write --mitigate token:cut=2)
run_fail_matching("bad --mitigate spec" ${QIF_CLI} campaign custom
                  --workload ior-easy-write --mitigate probe:min=5,max=3
                  --out rejected.csv)
