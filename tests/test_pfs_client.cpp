// End-to-end tests for the PFS client + cluster: POSIX-ish semantics, RPC
// chunking, trace emission, flush-on-close, and the monitored-server
// counter mapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "qif/pfs/admission.hpp"
#include "qif/pfs/cluster.hpp"
#include "qif/pfs/faults.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {
namespace {

struct ClusterFixture : ::testing::Test {
  sim::Simulation s;
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cluster;
  void SetUp() override {
    cfg.seed = 9;
    cfg.ost_disk.service_jitter = 0.0;
    cfg.mdt_disk.service_jitter = 0.0;
    cfg.mdt.cpu_jitter = 0.0;
    cluster = std::make_unique<Cluster>(s, cfg);
  }
};

TEST_F(ClusterFixture, TopologyMatchesConfig) {
  EXPECT_EQ(cluster->n_osts(), 6);
  EXPECT_EQ(cluster->n_servers(), 7);
  EXPECT_EQ(cluster->mdt_server_index(), 6);
  EXPECT_EQ(cluster->oss_port(0), 0);
  EXPECT_EQ(cluster->oss_port(1), 0);
  EXPECT_EQ(cluster->oss_port(2), 1);
  EXPECT_EQ(cluster->oss_port(5), 2);
  EXPECT_EQ(cluster->mds_port(), 3);
  EXPECT_EQ(cluster->server_index(trace::kMdtTarget), 6);
  EXPECT_EQ(cluster->server_index(2), 2);
}

TEST_F(ClusterFixture, CreateWriteReadCloseRoundTrip) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  bool finished = false;
  client.create("/t/file", 1, [&](FileHandle fh) {
    ASSERT_TRUE(fh.valid());
    client.write(fh, 0, 2 << 20, [&, fh] {
      client.read(fh, 0, 1 << 20, [&, fh] {
        client.close(fh, [&] { finished = true; });
      });
    });
  });
  s.run_all();
  EXPECT_TRUE(finished);
  const auto& recs = cluster->trace_log().records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].type, OpType::kCreate);
  EXPECT_EQ(recs[1].type, OpType::kWrite);
  EXPECT_EQ(recs[1].bytes, 2 << 20);
  EXPECT_EQ(recs[2].type, OpType::kRead);
  EXPECT_EQ(recs[3].type, OpType::kClose);
}

TEST_F(ClusterFixture, OpIndicesAreSequentialPerRank) {
  PfsClient& c0 = cluster->make_client(0, 0, 0);
  PfsClient& c1 = cluster->make_client(1, 1, 0);
  c0.stat("/", [](bool, std::int64_t) {});
  c1.stat("/", [](bool, std::int64_t) {});
  c0.stat("/", [](bool, std::int64_t) {});
  s.run_all();
  std::int64_t max_r0 = -1, max_r1 = -1;
  for (const auto& r : cluster->trace_log().records()) {
    if (r.rank == 0) max_r0 = std::max(max_r0, r.op_index);
    if (r.rank == 1) max_r1 = std::max(max_r1, r.op_index);
  }
  EXPECT_EQ(max_r0, 1);
  EXPECT_EQ(max_r1, 0);
}

TEST_F(ClusterFixture, MetadataOpsTargetMdt) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  client.mkdir("/d", [] {});
  s.run_all();
  const auto& rec = cluster->trace_log().records().back();
  ASSERT_EQ(rec.targets.size(), 1u);
  EXPECT_EQ(rec.targets[0], trace::kMdtTarget);
}

TEST_F(ClusterFixture, StripedWriteTargetsAllItsOsts) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  std::vector<std::int32_t> targets;
  client.create("/wide", 0, [&](FileHandle fh) {
    client.write(fh, 0, 6 << 20, [] {});  // one stripe unit on each OST
  });
  s.run_all();
  for (const auto& r : cluster->trace_log().records()) {
    if (r.type == OpType::kWrite) targets = r.targets;
  }
  EXPECT_EQ(targets.size(), 6u);
}

TEST_F(ClusterFixture, LargeOpSplitsIntoRpcChunks) {
  // A 4 MiB read on a 1-stripe file must produce 4 x 1 MiB disk requests.
  PfsClient& client = cluster->make_client(0, 0, 0);
  OstId ost = -1;
  client.create("/big", 1, [&](FileHandle fh) {
    ost = fh.layout->osts()[0];
    client.read(fh, 0, 4 << 20, [] {});
  });
  s.run_all();
  ASSERT_GE(ost, 0);
  EXPECT_EQ(cluster->ost(ost).disk().counters().sectors_read, (4 << 20) / 512);
}

TEST_F(ClusterFixture, SmallFileCloseFlushesSynchronously) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  OstId ost = -1;
  sim::SimTime write_done = 0;
  client.create("/small", 1, [&](FileHandle fh) {
    ost = fh.layout->osts()[0];
    client.write(fh, 0, 3901, [&, fh] {
      write_done = s.now();
      client.close(fh, [] {});
    });
  });
  s.run_all();
  ASSERT_GE(ost, 0);
  // The 3901-byte body reaches the disk via the close's sync flush.
  EXPECT_EQ(cluster->ost(ost).disk().counters().sectors_written, (3901 + 511) / 512);
  const auto& close_rec = cluster->trace_log().records().back();
  ASSERT_EQ(close_rec.type, OpType::kClose);
  // The close targets both the OST (flush) and the MDT (namespace close).
  ASSERT_EQ(close_rec.targets.size(), 2u);
  EXPECT_EQ(close_rec.targets[0], ost);
  EXPECT_EQ(close_rec.targets[1], trace::kMdtTarget);
  // And the close is the expensive op, not the buffered write.
  EXPECT_GT(close_rec.duration(), 0);
}

TEST_F(ClusterFixture, LargeFileCloseIsCheap) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  sim::SimDuration close_time = 0;
  client.create("/bulk", 1, [&](FileHandle fh) {
    client.write(fh, 0, 4 << 20, [&, fh] {
      client.close(fh, [] {});
    });
  });
  s.run_all();
  for (const auto& r : cluster->trace_log().records()) {
    if (r.type == OpType::kClose) close_time = r.duration();
  }
  EXPECT_LT(sim::to_millis(close_time), 10.0);
}

TEST_F(ClusterFixture, ZeroLengthDataOpStillEmitsRecord) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  bool cb = false;
  client.create("/z", 1, [&](FileHandle fh) {
    client.write(fh, 0, 0, [&] { cb = true; });
  });
  s.run_all();
  EXPECT_TRUE(cb);
  const auto& recs = cluster->trace_log().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].type, OpType::kWrite);
  EXPECT_EQ(recs[1].bytes, 0);
}

TEST_F(ClusterFixture, ServerCountersReflectLoad) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  client.create("/load", 1, [&](FileHandle fh) {
    client.read(fh, 0, 1 << 20, [] {});
  });
  s.run_all();
  bool some_reads = false;
  for (int srv = 0; srv < cluster->n_osts(); ++srv) {
    const auto counters = cluster->server_counters(srv);
    if (counters[0] > 0) some_reads = true;  // completed reads
  }
  EXPECT_TRUE(some_reads);
  // MDT server counters include the create as a modifying op.
  const auto mdt = cluster->server_counters(cluster->mdt_server_index());
  EXPECT_GE(mdt[1], 1);  // completed "writes" = modifying metadata ops
}

TEST_F(ClusterFixture, WriteUpdatesFileSizeAtMds) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  std::int64_t size_seen = -1;
  client.create("/grow", 1, [&](FileHandle fh) {
    client.write(fh, 0, 12345, [&] {
      client.stat("/grow", [&](bool ok, std::int64_t size) {
        ASSERT_TRUE(ok);
        size_seen = size;
      });
    });
  });
  s.run_all();
  EXPECT_EQ(size_seen, 12345);
}

TEST_F(ClusterFixture, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim;
    ClusterConfig cc;
    cc.seed = seed;
    Cluster cl(sim, cc);
    PfsClient& client = cl.make_client(0, 0, 0);
    client.create("/det", 0, [&](FileHandle fh) {
      client.write(fh, 0, 8 << 20, [&, fh] {
        client.read(fh, 0, 8 << 20, [&, fh] { client.close(fh, [] {}); });
      });
    });
    sim.run_all();
    std::vector<sim::SimTime> ends;
    for (const auto& r : cl.trace_log().records()) ends.push_back(r.end);
    return ends;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // jitter differs across seeds
}

// ---------------------------------------------------------------------------
// Admission gate x timeout/retry machine (qif::ctrl rides this hook).
// ---------------------------------------------------------------------------

/// Scriptable test double: waits `delay` for the first `waits_left` asks,
/// admits everything after, and counts what it sees.
struct FixedGate final : AdmissionGate {
  sim::SimDuration delay = 0;
  int waits_left = 0;
  int cap = 1 << 20;  ///< far above max_rpcs_in_flight: exercises the clamp
  std::int64_t asks = 0;
  std::int64_t admitted = 0;
  std::int64_t completions = 0;
  std::int64_t completed_bytes = 0;
  int inflight = 0;
  int max_inflight = 0;

  sim::SimDuration acquire(int, std::int64_t, sim::SimTime) override {
    ++asks;
    if (waits_left > 0) {
      --waits_left;
      return delay;
    }
    ++admitted;
    inflight += 1;
    max_inflight = std::max(max_inflight, inflight);
    return 0;
  }
  [[nodiscard]] int concurrency_cap() const override { return cap; }
  void on_chunk_complete(int, std::int64_t bytes, sim::SimDuration) override {
    inflight -= 1;
    ++completions;
    completed_bytes += bytes;
  }
};

TEST(AdmissionGate, ThrottleDelayIsNeverCountedAsTimeoutOrRetry) {
  sim::Simulation s;
  ClusterConfig cfg;
  cfg.seed = 9;
  cfg.client.rpc_deadline = 300 * sim::kMillisecond;
  Cluster cluster(s, cfg);
  PfsClient& client = cluster.make_client(0, 0, 0);
  FixedGate gate;
  gate.delay = 200 * sim::kMillisecond;
  gate.waits_left = 3;  // 600 ms of admission delay, past the RPC deadline
  client.set_gate(&gate);
  bool done = false;
  client.create("/throttled", 1, [&](FileHandle fh) {
    client.write(fh, 0, 4 << 20, [&] { done = true; });
  });
  s.run_all();
  EXPECT_TRUE(done);
  const auto& rec = cluster.trace_log().records().back();
  ASSERT_EQ(rec.type, OpType::kWrite);
  // The per-RPC deadline arms only after admission: throttling for twice
  // the deadline surfaces as latency, never as a timeout/retry/failure.
  EXPECT_EQ(rec.retries, 0);
  EXPECT_EQ(rec.timeouts, 0);
  EXPECT_FALSE(rec.failed);
  EXPECT_GE(rec.duration(), 600 * sim::kMillisecond);
  EXPECT_EQ(gate.admitted, 4);  // 4 x 1 MiB chunks
  EXPECT_EQ(gate.asks, 4 + 3);  // a rejected ask consumes nothing
  EXPECT_EQ(gate.completions, 4);
  EXPECT_EQ(gate.completed_bytes, 4 << 20);
}

TEST_F(ClusterFixture, GateConcurrencyCapSerializesChunks) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  FixedGate gate;
  gate.cap = 1;
  client.set_gate(&gate);
  client.create("/serial", 1, [&](FileHandle fh) {
    client.read(fh, 0, 8 << 20, [] {});
  });
  s.run_all();
  EXPECT_EQ(gate.admitted, 8);
  EXPECT_EQ(gate.max_inflight, 1);
}

TEST_F(ClusterFixture, GateCapIsClampedToMaxRpcsInFlight) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  FixedGate gate;  // cap stays at its huge default
  client.set_gate(&gate);
  client.create("/wide-pipe", 1, [&](FileHandle fh) {
    client.read(fh, 0, 16 << 20, [] {});
  });
  s.run_all();
  EXPECT_EQ(gate.admitted, 16);
  EXPECT_EQ(gate.max_inflight, 8);  // the client's clamp, not the gate's cap
}

/// A stall window on OST 0 long enough that the first read attempts hit
/// their deadline and retry; metadata RPCs (MDS) stay healthy throughout.
faults::FaultPlan ost0_stall() {
  faults::FaultPlan plan;
  plan.stalls.push_back({/*ost=*/0, /*start=*/0, /*duration=*/2500 * sim::kMillisecond});
  return plan;
}

TEST(AdmissionGate, ZeroDelayGateIsInvisibleEvenUnderRetries) {
  // An always-admit gate must not move a single event: same op-end and
  // fault-counter sequences with and without it, both on the healthy path
  // and with the timeout/retry machine firing (a stalled OST).  This pins
  // the no-double-count contract — the gate adds no events when admitting
  // and never touches the retry RNG's jitter stream.
  const auto run = [](bool stalled, bool gated) {
    sim::Simulation s;
    ClusterConfig cfg;
    cfg.seed = 9;
    cfg.client.rpc_deadline = 200 * sim::kMillisecond;
    Cluster cluster(s, cfg);
    std::unique_ptr<faults::FaultInjector> injector;
    if (stalled) {
      injector = std::make_unique<faults::FaultInjector>(cluster, ost0_stall(), 5);
    }
    PfsClient& client = cluster.make_client(0, 0, 0);
    FixedGate gate;
    if (gated) client.set_gate(&gate);
    client.create("/invisible", 1, [&](FileHandle fh) {
      client.read(fh, 0, 3 << 20, [&, fh] { client.close(fh, [] {}); });
    }, /*stripe_hint=*/0);  // pin to the (possibly stalled) OST 0
    s.run_all();
    std::vector<std::tuple<sim::SimTime, std::int32_t, std::int32_t, bool>> log;
    for (const auto& r : cluster.trace_log().records()) {
      log.emplace_back(r.end, r.retries, r.timeouts, r.failed);
    }
    return log;
  };
  EXPECT_EQ(run(false, true), run(false, false));
  const auto faulted = run(true, true);
  EXPECT_EQ(faulted, run(true, false));
  std::int64_t timeouts = 0;
  for (const auto& entry : faulted) timeouts += std::get<2>(entry);
  EXPECT_GT(timeouts, 0) << "the stalled OST should have tripped the retry machine";
}

TEST(AdmissionGate, RetriesNeverReenterTheGate) {
  // A chunk that times out is re-issued inside the retry machine, but it is
  // admitted exactly once: the gate sees chunks + scripted-waits asks, no
  // matter how many attempts the stall forces.  And two identical runs stay
  // bit-identical — throttling composes with the deterministic retry jitter
  // without perturbing it.
  const auto run = [] {
    sim::Simulation s;
    ClusterConfig cfg;
    cfg.seed = 9;
    cfg.client.rpc_deadline = 200 * sim::kMillisecond;
    Cluster cluster(s, cfg);
    faults::FaultInjector injector(cluster, ost0_stall(), 5);
    PfsClient& client = cluster.make_client(0, 0, 0);
    FixedGate gate;
    gate.delay = 50 * sim::kMillisecond;
    gate.waits_left = 2;
    client.set_gate(&gate);
    trace::OpRecord read_rec;
    client.create("/stalled", 1, [&](FileHandle fh) {
      client.read(fh, 0, 3 << 20, [] {});
    }, /*stripe_hint=*/0);
    s.run_all();
    for (const auto& r : cluster.trace_log().records()) {
      if (r.type == OpType::kRead) read_rec = r;
    }
    return std::make_tuple(read_rec.end, read_rec.retries, read_rec.timeouts,
                           read_rec.failed, gate.asks, gate.admitted,
                           gate.completions);
  };
  const auto first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(std::get<4>(first), 3 + 2);  // 3 chunk admissions + 2 waits
  EXPECT_EQ(std::get<5>(first), 3);
  EXPECT_EQ(std::get<6>(first), 3);      // timed-out chunks still report back
  EXPECT_GT(std::get<2>(first), 0);      // the stall really forced timeouts
}

}  // namespace
}  // namespace qif::pfs
