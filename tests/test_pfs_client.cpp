// End-to-end tests for the PFS client + cluster: POSIX-ish semantics, RPC
// chunking, trace emission, flush-on-close, and the monitored-server
// counter mapping.
#include <gtest/gtest.h>

#include "qif/pfs/cluster.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {
namespace {

struct ClusterFixture : ::testing::Test {
  sim::Simulation s;
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cluster;
  void SetUp() override {
    cfg.seed = 9;
    cfg.ost_disk.service_jitter = 0.0;
    cfg.mdt_disk.service_jitter = 0.0;
    cfg.mdt.cpu_jitter = 0.0;
    cluster = std::make_unique<Cluster>(s, cfg);
  }
};

TEST_F(ClusterFixture, TopologyMatchesConfig) {
  EXPECT_EQ(cluster->n_osts(), 6);
  EXPECT_EQ(cluster->n_servers(), 7);
  EXPECT_EQ(cluster->mdt_server_index(), 6);
  EXPECT_EQ(cluster->oss_port(0), 0);
  EXPECT_EQ(cluster->oss_port(1), 0);
  EXPECT_EQ(cluster->oss_port(2), 1);
  EXPECT_EQ(cluster->oss_port(5), 2);
  EXPECT_EQ(cluster->mds_port(), 3);
  EXPECT_EQ(cluster->server_index(trace::kMdtTarget), 6);
  EXPECT_EQ(cluster->server_index(2), 2);
}

TEST_F(ClusterFixture, CreateWriteReadCloseRoundTrip) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  bool finished = false;
  client.create("/t/file", 1, [&](FileHandle fh) {
    ASSERT_TRUE(fh.valid());
    client.write(fh, 0, 2 << 20, [&, fh] {
      client.read(fh, 0, 1 << 20, [&, fh] {
        client.close(fh, [&] { finished = true; });
      });
    });
  });
  s.run_all();
  EXPECT_TRUE(finished);
  const auto& recs = cluster->trace_log().records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].type, OpType::kCreate);
  EXPECT_EQ(recs[1].type, OpType::kWrite);
  EXPECT_EQ(recs[1].bytes, 2 << 20);
  EXPECT_EQ(recs[2].type, OpType::kRead);
  EXPECT_EQ(recs[3].type, OpType::kClose);
}

TEST_F(ClusterFixture, OpIndicesAreSequentialPerRank) {
  PfsClient& c0 = cluster->make_client(0, 0, 0);
  PfsClient& c1 = cluster->make_client(1, 1, 0);
  c0.stat("/", [](bool, std::int64_t) {});
  c1.stat("/", [](bool, std::int64_t) {});
  c0.stat("/", [](bool, std::int64_t) {});
  s.run_all();
  std::int64_t max_r0 = -1, max_r1 = -1;
  for (const auto& r : cluster->trace_log().records()) {
    if (r.rank == 0) max_r0 = std::max(max_r0, r.op_index);
    if (r.rank == 1) max_r1 = std::max(max_r1, r.op_index);
  }
  EXPECT_EQ(max_r0, 1);
  EXPECT_EQ(max_r1, 0);
}

TEST_F(ClusterFixture, MetadataOpsTargetMdt) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  client.mkdir("/d", [] {});
  s.run_all();
  const auto& rec = cluster->trace_log().records().back();
  ASSERT_EQ(rec.targets.size(), 1u);
  EXPECT_EQ(rec.targets[0], trace::kMdtTarget);
}

TEST_F(ClusterFixture, StripedWriteTargetsAllItsOsts) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  std::vector<std::int32_t> targets;
  client.create("/wide", 0, [&](FileHandle fh) {
    client.write(fh, 0, 6 << 20, [] {});  // one stripe unit on each OST
  });
  s.run_all();
  for (const auto& r : cluster->trace_log().records()) {
    if (r.type == OpType::kWrite) targets = r.targets;
  }
  EXPECT_EQ(targets.size(), 6u);
}

TEST_F(ClusterFixture, LargeOpSplitsIntoRpcChunks) {
  // A 4 MiB read on a 1-stripe file must produce 4 x 1 MiB disk requests.
  PfsClient& client = cluster->make_client(0, 0, 0);
  OstId ost = -1;
  client.create("/big", 1, [&](FileHandle fh) {
    ost = fh.layout->osts()[0];
    client.read(fh, 0, 4 << 20, [] {});
  });
  s.run_all();
  ASSERT_GE(ost, 0);
  EXPECT_EQ(cluster->ost(ost).disk().counters().sectors_read, (4 << 20) / 512);
}

TEST_F(ClusterFixture, SmallFileCloseFlushesSynchronously) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  OstId ost = -1;
  sim::SimTime write_done = 0;
  client.create("/small", 1, [&](FileHandle fh) {
    ost = fh.layout->osts()[0];
    client.write(fh, 0, 3901, [&, fh] {
      write_done = s.now();
      client.close(fh, [] {});
    });
  });
  s.run_all();
  ASSERT_GE(ost, 0);
  // The 3901-byte body reaches the disk via the close's sync flush.
  EXPECT_EQ(cluster->ost(ost).disk().counters().sectors_written, (3901 + 511) / 512);
  const auto& close_rec = cluster->trace_log().records().back();
  ASSERT_EQ(close_rec.type, OpType::kClose);
  // The close targets both the OST (flush) and the MDT (namespace close).
  ASSERT_EQ(close_rec.targets.size(), 2u);
  EXPECT_EQ(close_rec.targets[0], ost);
  EXPECT_EQ(close_rec.targets[1], trace::kMdtTarget);
  // And the close is the expensive op, not the buffered write.
  EXPECT_GT(close_rec.duration(), 0);
}

TEST_F(ClusterFixture, LargeFileCloseIsCheap) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  sim::SimDuration close_time = 0;
  client.create("/bulk", 1, [&](FileHandle fh) {
    client.write(fh, 0, 4 << 20, [&, fh] {
      client.close(fh, [] {});
    });
  });
  s.run_all();
  for (const auto& r : cluster->trace_log().records()) {
    if (r.type == OpType::kClose) close_time = r.duration();
  }
  EXPECT_LT(sim::to_millis(close_time), 10.0);
}

TEST_F(ClusterFixture, ZeroLengthDataOpStillEmitsRecord) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  bool cb = false;
  client.create("/z", 1, [&](FileHandle fh) {
    client.write(fh, 0, 0, [&] { cb = true; });
  });
  s.run_all();
  EXPECT_TRUE(cb);
  const auto& recs = cluster->trace_log().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[1].type, OpType::kWrite);
  EXPECT_EQ(recs[1].bytes, 0);
}

TEST_F(ClusterFixture, ServerCountersReflectLoad) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  client.create("/load", 1, [&](FileHandle fh) {
    client.read(fh, 0, 1 << 20, [] {});
  });
  s.run_all();
  bool some_reads = false;
  for (int srv = 0; srv < cluster->n_osts(); ++srv) {
    const auto counters = cluster->server_counters(srv);
    if (counters[0] > 0) some_reads = true;  // completed reads
  }
  EXPECT_TRUE(some_reads);
  // MDT server counters include the create as a modifying op.
  const auto mdt = cluster->server_counters(cluster->mdt_server_index());
  EXPECT_GE(mdt[1], 1);  // completed "writes" = modifying metadata ops
}

TEST_F(ClusterFixture, WriteUpdatesFileSizeAtMds) {
  PfsClient& client = cluster->make_client(0, 0, 0);
  std::int64_t size_seen = -1;
  client.create("/grow", 1, [&](FileHandle fh) {
    client.write(fh, 0, 12345, [&] {
      client.stat("/grow", [&](bool ok, std::int64_t size) {
        ASSERT_TRUE(ok);
        size_seen = size;
      });
    });
  });
  s.run_all();
  EXPECT_EQ(size_seen, 12345);
}

TEST_F(ClusterFixture, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    sim::Simulation sim;
    ClusterConfig cc;
    cc.seed = seed;
    Cluster cl(sim, cc);
    PfsClient& client = cl.make_client(0, 0, 0);
    client.create("/det", 0, [&](FileHandle fh) {
      client.write(fh, 0, 8 << 20, [&, fh] {
        client.read(fh, 0, 8 << 20, [&, fh] { client.close(fh, [] {}); });
      });
    });
    sim.run_all();
    std::vector<sim::SimTime> ends;
    for (const auto& r : cl.trace_log().records()) ends.push_back(r.end);
    return ends;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // jitter differs across seeds
}

}  // namespace
}  // namespace qif::pfs
