// Tests for preprocessing (standardizer, split, class weights), the
// trainer, and the classification metrics.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <sstream>

#include "qif/ml/metrics.hpp"
#include "qif/ml/preprocess.hpp"
#include "qif/ml/trainer.hpp"

namespace qif::ml {
namespace {

monitor::Dataset synthetic_dataset(std::size_t n, std::uint64_t seed) {
  // 2 servers x 3 features; label = 1 iff server 0's feature 0 is large.
  monitor::Dataset ds(2, 3);
  sim::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool hot = rng.chance(0.5);
    double* f = ds.append_row(static_cast<std::int64_t>(i), hot ? 1 : 0,
                              hot ? 4.0 : 1.0);
    f[0] = hot ? rng.uniform(5.0, 8.0) : rng.uniform(0.0, 2.0);
    f[1] = rng.normal(0, 1);
    f[2] = rng.normal(100, 10);
    f[3] = rng.normal(0, 1);
    f[4] = rng.normal(0, 1);
    f[5] = rng.normal(-5, 2);
  }
  return ds;
}

TEST(Standardizer, ZeroMeanUnitVarianceAfterTransform) {
  const auto ds = synthetic_dataset(500, 1);
  Standardizer stdz;
  stdz.fit(ds);
  ASSERT_TRUE(stdz.fitted());
  EXPECT_EQ(stdz.dim(), 3);
  // Pool transformed values per column (over samples AND servers).
  std::vector<double> sum(3, 0.0), sq(3, 0.0);
  std::size_t n = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    auto f = ds.row_vector(i);
    stdz.transform(f);
    for (std::size_t off = 0; off < f.size(); off += 3) {
      ++n;
      for (std::size_t j = 0; j < 3; ++j) {
        sum[j] += f[off + j];
        sq[j] += f[off + j] * f[off + j];
      }
    }
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(sum[j] / n, 0.0, 1e-9);
    EXPECT_NEAR(sq[j] / n, 1.0, 1e-6);
  }
}

TEST(Standardizer, ConstantFeaturePassesThrough) {
  monitor::Dataset ds(1, 2);
  for (int i = 0; i < 10; ++i) {
    double* f = ds.append_row(i, 0, 1.0);
    f[0] = 7.0;
    f[1] = static_cast<double>(i);
  }
  Standardizer stdz;
  stdz.fit(ds);
  std::vector<double> f = {7.0, 4.5};
  stdz.transform(f);
  EXPECT_DOUBLE_EQ(f[0], 0.0);  // (7-7) * 1
  EXPECT_NEAR(f[1], 0.0, 1e-9);
}

TEST(Standardizer, SaveLoadRoundTrip) {
  const auto ds = synthetic_dataset(100, 2);
  Standardizer a;
  a.fit(ds);
  std::stringstream ss;
  a.save(ss);
  Standardizer b;
  b.load(ss);
  std::vector<double> fa = ds.row_vector(0);
  std::vector<double> fb = fa;
  a.transform(fa);
  b.transform(fb);
  for (std::size_t i = 0; i < fa.size(); ++i) EXPECT_NEAR(fa[i], fb[i], 1e-12);
}

TEST(Standardizer, TransformIntoMatchesTransform) {
  const auto ds = synthetic_dataset(64, 21);
  Standardizer stdz;
  stdz.fit(ds);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    std::vector<double> expected = ds.row_vector(i);
    stdz.transform(expected);
    std::vector<double> got(ds.width());
    stdz.transform_into(ds.row(i), ds.width(), got.data());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_DOUBLE_EQ(got[j], expected[j]);
    }
  }
}

TEST(Standardizer, LoadThrowsOnTruncatedOrCorruptStream) {
  // Regression: load() used to ignore stream state, so a truncated model
  // file silently yielded a garbage standardizer.
  const auto ds = synthetic_dataset(100, 7);
  Standardizer a;
  a.fit(ds);
  std::stringstream ss;
  a.save(ss);
  const std::string full = ss.str();

  Standardizer b;
  std::stringstream truncated(full.substr(0, full.size() / 3));
  EXPECT_THROW(b.load(truncated), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW(b.load(empty), std::runtime_error);
  std::stringstream garbage("banana");
  EXPECT_THROW(b.load(garbage), std::runtime_error);
}

TEST(SplitDataset, SmallDatasetKeepsAtLeastOneTrainingSample) {
  // Regression: llround(test_fraction * n) could equal n, handing every
  // sample to the test split and returning an empty training set.
  const auto two = synthetic_dataset(2, 11);
  auto [train2, test2] = split_dataset(two, 0.9, 1);  // llround(1.8) == 2
  EXPECT_EQ(train2.size(), 1u);
  EXPECT_EQ(test2.size(), 1u);

  const auto one = synthetic_dataset(1, 12);
  auto [train1, test1] = split_dataset(one, 0.5, 1);  // llround(0.5) == 1
  EXPECT_EQ(train1.size(), 1u);
  EXPECT_EQ(test1.size(), 0u);

  // An explicit pure test set (fraction == 1.0) is still allowed.
  auto [train_none, test_all] = split_dataset(two, 1.0, 1);
  EXPECT_EQ(train_none.size(), 0u);
  EXPECT_EQ(test_all.size(), 2u);

  const monitor::Dataset empty_ds;
  auto [train0, test0] = split_dataset(empty_ds, 0.2, 1);
  EXPECT_EQ(train0.size(), 0u);
  EXPECT_EQ(test0.size(), 0u);
}

TEST(SplitDataset, FractionsAndDisjointness) {
  const auto ds = synthetic_dataset(1000, 3);
  auto [train, test] = split_dataset(ds, 0.2, 5);
  EXPECT_EQ(train.size() + test.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(test.size()), 200.0, 1.0);
  std::set<std::int64_t> train_w, test_w;
  for (std::size_t i = 0; i < train.size(); ++i) train_w.insert(train.window_index(i));
  for (std::size_t i = 0; i < test.size(); ++i) test_w.insert(test.window_index(i));
  for (const auto w : test_w) EXPECT_EQ(train_w.count(w), 0u);
}

TEST(SplitDataset, DeterministicPerSeed) {
  const auto ds = synthetic_dataset(100, 4);
  auto [t1, e1] = split_dataset(ds, 0.2, 9);
  auto [t2, e2] = split_dataset(ds, 0.2, 9);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1.window_index(i), e2.window_index(i));
  }
}

TEST(SplitDataset, Seed42MembershipGolden) {
  // Pins the exact shuffle produced by Rng::derive_seed(42, "split") on the
  // canonical 20-row dataset.  The split must stay bit-identical across
  // refactors: the standardizer's Welford fit is iteration-order-dependent,
  // so any change in membership *or order* changes every trained model.
  monitor::Dataset ds(2, 3);
  for (int i = 0; i < 20; ++i) {
    double* f = ds.append_row(i, i % 2, 1.0 + i);
    for (int j = 0; j < 6; ++j) f[j] = static_cast<double>((j + 1) * i);
  }
  auto [train, test] = split_dataset(ds, 0.2, 42);
  const std::vector<std::int64_t> want_test = {8, 4, 1, 5};
  const std::vector<std::int64_t> want_train = {17, 10, 12, 0, 3, 7,  6,  19,
                                                18, 11, 15, 16, 2, 13, 14, 9};
  ASSERT_EQ(test.size(), want_test.size());
  ASSERT_EQ(train.size(), want_train.size());
  for (std::size_t i = 0; i < want_test.size(); ++i) {
    EXPECT_EQ(test.window_index(i), want_test[i]) << "test row " << i;
  }
  for (std::size_t i = 0; i < want_train.size(); ++i) {
    EXPECT_EQ(train.window_index(i), want_train[i]) << "train row " << i;
  }
  // Views are zero-copy: both index into the original table.
  EXPECT_EQ(train.table(), &ds);
  EXPECT_EQ(test.table(), &ds);
}

TEST(SplitDataset, DegenerateFractionsReturnValidViews) {
  // Bugfix pins.  A fraction above 1 used to underflow the train size
  // (n - n_test with n_test > n); a negative or NaN fraction used to
  // llround to a huge/garbage n_test.  All of them must now return a pair
  // of valid, disjoint, exhaustive views.
  const auto ds = synthetic_dataset(10, 21);
  struct Case {
    double fraction;
    std::size_t want_test;
  };
  const Case cases[] = {
      {1.5, 10},                                        // clamped to "all test"
      {2.0, 10},
      {-0.25, 0},                                       // no test rows
      {std::numeric_limits<double>::quiet_NaN(), 0},    // treated as 0
      {0.0, 0},
  };
  for (const Case& c : cases) {
    auto [train, test] = split_dataset(ds, c.fraction, 3);
    EXPECT_EQ(test.size(), c.want_test) << "fraction " << c.fraction;
    EXPECT_EQ(train.size() + test.size(), ds.size()) << "fraction " << c.fraction;
    // Every row accounted for exactly once.
    std::set<std::int64_t> seen;
    for (std::size_t i = 0; i < train.size(); ++i) seen.insert(train.window_index(i));
    for (std::size_t i = 0; i < test.size(); ++i) seen.insert(test.window_index(i));
    EXPECT_EQ(seen.size(), ds.size()) << "fraction " << c.fraction;
  }
}

TEST(SplitDataset, SingleRowAndZeroTestAreUsableViews) {
  // n_test == 0: the test view must be a valid (empty) view, not UB.
  const auto ds = synthetic_dataset(7, 22);
  auto [train, test] = split_dataset(ds, 0.01, 4);  // llround(0.07) == 0
  EXPECT_EQ(test.size(), 0u);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_TRUE(test.empty());
  EXPECT_EQ(test.class_histogram().size(), 1u);  // callable on the empty view

  const auto one = synthetic_dataset(1, 23);
  auto [t1, e1] = split_dataset(one, 0.99, 4);  // keep-one-train rule
  EXPECT_EQ(t1.size(), 1u);
  EXPECT_EQ(e1.size(), 0u);
  EXPECT_EQ(t1.row(0), one.row(0));  // zero-copy view of the single row
}

TEST(SplitRows, MatchesSplitDatasetMembership) {
  // The index core and the view wrapper must stay the same split forever
  // (the streaming trainer relies on it for bit-identity).
  const auto ds = synthetic_dataset(57, 24);
  auto [train_view, test_view] = split_dataset(ds, 0.2, 42);
  auto [train_idx, test_idx] = split_rows(ds.size(), 0.2, 42);
  ASSERT_EQ(train_idx.size(), train_view.size());
  ASSERT_EQ(test_idx.size(), test_view.size());
  for (std::size_t i = 0; i < train_idx.size(); ++i) {
    EXPECT_EQ(train_idx[i], train_view.base_row(i)) << i;
  }
  for (std::size_t i = 0; i < test_idx.size(); ++i) {
    EXPECT_EQ(test_idx[i], test_view.base_row(i)) << i;
  }
}

TEST(InverseFrequencyWeights, BalancesClasses) {
  monitor::Dataset ds(1, 1);
  for (int i = 0; i < 30; ++i) {
    ds.append_row(i, i < 24 ? 1 : 0, 0.0);  // 24 positive, 6 negative
  }
  const auto w = inverse_frequency_weights(ds, 2);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 30.0 / (2 * 6), 1e-12);
  EXPECT_NEAR(w[1], 30.0 / (2 * 24), 1e-12);
  // Expected total contribution per class becomes equal.
  EXPECT_NEAR(w[0] * 6, w[1] * 24, 1e-9);
}

TEST(Trainer, FitsSeparableDataset) {
  const auto ds = synthetic_dataset(600, 6);
  auto [train, test] = split_dataset(ds, 0.25, 7);
  TrainConfig tc;
  tc.max_epochs = 200;
  tc.adam.lr = 3e-3;
  Trainer trainer(tc);
  KernelNetConfig nc;
  nc.per_server_dim = 3;
  nc.n_servers = 2;
  nc.n_classes = 2;
  nc.kernel_hidden = {8};
  nc.head_hidden = {4};
  KernelNet net(nc);
  Standardizer stdz;
  const TrainResult result = trainer.train(net, stdz, train);
  EXPECT_GT(result.best_val_macro_f1, 0.95);
  EXPECT_FALSE(result.history.empty());
  const ConfusionMatrix cm = Trainer::evaluate(net, stdz, test);
  EXPECT_GT(cm.accuracy(), 0.95);
}

TEST(Trainer, EarlyStoppingRestoresBestEpoch) {
  const auto ds = synthetic_dataset(200, 8);
  TrainConfig tc;
  tc.max_epochs = 60;
  tc.patience = 5;
  Trainer trainer(tc);
  KernelNetConfig nc;
  nc.per_server_dim = 3;
  nc.n_servers = 2;
  nc.n_classes = 2;
  KernelNet net(nc);
  Standardizer stdz;
  const TrainResult result = trainer.train(net, stdz, ds);
  EXPECT_LE(result.best_epoch,
            static_cast<int>(result.history.size()));
  // Stopped within patience of the best epoch.
  EXPECT_LE(static_cast<int>(result.history.size()) - result.best_epoch, tc.patience);
}

TEST(Trainer, ResultIsBitIdenticalAcrossJobCounts) {
  // Campaign-width dataset (7 servers x 37 features) so the kernel-layer
  // GEMMs at batch 64 — (448, 37)x(37, 64) ≈ 1.06M multiply-adds — clear
  // the parallel threshold and the pooled path actually runs.  The
  // determinism contract says jobs must not change a single bit.
  monitor::Dataset ds(7, 37);
  sim::Rng rng(23);
  for (std::size_t i = 0; i < 192; ++i) {
    const bool hot = i % 2 == 0;
    double* f = ds.append_row(static_cast<std::int64_t>(i), hot ? 1 : 0,
                              hot ? 4.0 : 1.0);
    for (std::size_t k = 0; k < ds.width(); ++k) f[k] = rng.normal(0, 1);
    if (hot) f[0] += 4.0;
  }

  auto run = [&ds](int jobs) {
    TrainConfig tc;
    tc.max_epochs = 4;
    tc.jobs = jobs;
    Trainer trainer(tc);
    KernelNetConfig nc;
    nc.per_server_dim = 37;
    nc.n_servers = 7;
    nc.n_classes = 2;
    KernelNet net(nc);
    Standardizer stdz;
    const TrainResult result = trainer.train(net, stdz, ds);
    std::stringstream weights;
    net.save(weights);
    return std::make_pair(result, weights.str());
  };

  const auto [r1, w1] = run(1);
  for (const int jobs : {2, 4}) {
    const auto [rn, wn] = run(jobs);
    EXPECT_EQ(rn.best_epoch, r1.best_epoch) << "jobs=" << jobs;
    EXPECT_EQ(rn.best_val_macro_f1, r1.best_val_macro_f1) << "jobs=" << jobs;
    ASSERT_EQ(rn.history.size(), r1.history.size()) << "jobs=" << jobs;
    for (std::size_t e = 0; e < r1.history.size(); ++e) {
      EXPECT_EQ(rn.history[e].train_loss, r1.history[e].train_loss)
          << "jobs=" << jobs << " epoch=" << e;
      EXPECT_EQ(rn.history[e].val_macro_f1, r1.history[e].val_macro_f1)
          << "jobs=" << jobs << " epoch=" << e;
    }
    // Final weights, via the exact text serialization, match byte for byte.
    EXPECT_EQ(wn, w1) << "jobs=" << jobs;
  }
}

TEST(ConfusionMatrix, HandComputedMetrics) {
  ConfusionMatrix cm(2);
  // 50 TN, 10 FP, 5 FN, 35 TP.
  for (int i = 0; i < 50; ++i) cm.add(0, 0);
  for (int i = 0; i < 10; ++i) cm.add(0, 1);
  for (int i = 0; i < 5; ++i) cm.add(1, 0);
  for (int i = 0; i < 35; ++i) cm.add(1, 1);
  EXPECT_EQ(cm.total(), 100);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.85);
  EXPECT_DOUBLE_EQ(cm.precision(1), 35.0 / 45.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 35.0 / 40.0);
  const double p = 35.0 / 45.0, r = 35.0 / 40.0;
  EXPECT_DOUBLE_EQ(cm.binary_f1(), 2 * p * r / (p + r));
  EXPECT_GT(cm.macro_f1(), 0.8);
}

TEST(ConfusionMatrix, EmptyClassHasZeroF1) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(0), 1.0);
}

TEST(ConfusionMatrix, ToStringContainsCountsAndNames) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 1);
  const std::string s = cm.to_string({"neg", "pos"});
  EXPECT_NE(s.find("neg"), std::string::npos);
  EXPECT_NE(s.find("pos"), std::string::npos);
  EXPECT_NE(s.find("accuracy"), std::string::npos);
}

TEST(ConfusionMatrix, AddAllMatchesIndividualAdds) {
  ConfusionMatrix a(2), b(2);
  const std::vector<int> truth = {0, 1, 1, 0, 1};
  const std::vector<int> pred = {0, 1, 0, 1, 1};
  a.add_all(truth, pred);
  for (std::size_t i = 0; i < truth.size(); ++i) b.add(truth[i], pred[i]);
  for (int t = 0; t < 2; ++t) {
    for (int p = 0; p < 2; ++p) EXPECT_EQ(a.at(t, p), b.at(t, p));
  }
}

}  // namespace
}  // namespace qif::ml
