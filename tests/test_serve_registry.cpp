// ModelRegistry and the binary .qifm format: roundtrip fidelity for both
// network kinds, version selection, warm fallback on corrupt candidates,
// and the same hostile-input discipline as the .qds fuzz suite — every
// strict truncation and every single-bit flip of a valid image must be
// rejected by a thrown error, never a crash or a silent wrong model, and
// hostile headers must be refused before any size-driven allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "qif/serve/batcher.hpp"
#include "qif/serve/registry.hpp"
#include "qif/sim/rng.hpp"

namespace qif::serve {
namespace {

constexpr int kD = 3;
constexpr int kS = 2;
constexpr std::size_t kFeat = kD * kS;

ServingModel tiny_kernel_model(std::uint64_t seed) {
  ServingModel m;
  m.kind = ServingModel::Kind::kKernel;
  ml::KernelNetConfig cfg;
  cfg.per_server_dim = kD;
  cfg.n_servers = kS;
  cfg.n_classes = 2;
  cfg.kernel_hidden = {4};
  cfg.head_hidden = {3};
  cfg.seed = seed;
  m.kernel = ml::KernelNet(cfg);
  std::vector<double> mean(kD), inv_std(kD);
  sim::Rng rng(seed + 1);
  for (int i = 0; i < kD; ++i) {
    mean[i] = rng.normal(0, 1);
    inv_std[i] = rng.uniform(0.5, 2.0);
  }
  m.stdz = ml::Standardizer::from_moments(std::move(mean), std::move(inv_std));
  m.n_classes = 2;
  return m;
}

ServingModel tiny_attention_model(std::uint64_t seed) {
  ServingModel m;
  m.kind = ServingModel::Kind::kAttention;
  ml::AttentionNetConfig cfg;
  cfg.per_server_dim = kD;
  cfg.n_servers = kS;
  cfg.n_classes = 2;
  cfg.embed_dim = 4;
  cfg.attention_dim = 3;
  cfg.head_hidden = {3};
  cfg.seed = seed;
  m.attention = ml::AttentionNet(cfg);
  m.stdz = ml::Standardizer::from_moments(std::vector<double>(kD, 0.0),
                                          std::vector<double>(kD, 1.0));
  m.n_classes = 2;
  return m;
}

std::string serialize(const ServingModel& m) {
  std::stringstream ss;
  save_model(m, ss);
  return ss.str();
}

/// Byte-exact prediction comparison between two bundles on a probe batch.
void expect_same_predictions(const ServingModel& a, const ServingModel& b) {
  sim::Rng rng(99);
  std::vector<double> features(kFeat);
  for (auto& v : features) v = rng.uniform(-1.5, 1.5);
  PredictScratch sa, sb;
  Request ra, rb;
  ra.features = rb.features = features.data();
  ra.n_features = rb.n_features = kFeat;
  Request* pa = &ra;
  Request* pb = &rb;
  predict_batch(a, &pa, 1, sa);
  predict_batch(b, &pb, 1, sb);
  EXPECT_EQ(ra.predicted_class, rb.predicted_class);
  ASSERT_EQ(ra.probabilities.size(), rb.probabilities.size());
  EXPECT_EQ(std::memcmp(ra.probabilities.data(), rb.probabilities.data(),
                        ra.probabilities.size() * sizeof(double)),
            0);
  ASSERT_EQ(ra.server_scores.size(), rb.server_scores.size());
  EXPECT_EQ(std::memcmp(ra.server_scores.data(), rb.server_scores.data(),
                        ra.server_scores.size() * sizeof(double)),
            0);
}

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/qif_registry_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(ModelFormat, KernelRoundtripIsExact) {
  const ServingModel m = tiny_kernel_model(7);
  std::stringstream ss(serialize(m));
  const ServingModel back = load_model(ss);
  EXPECT_EQ(back.kind, ServingModel::Kind::kKernel);
  EXPECT_EQ(back.n_classes, 2);
  EXPECT_EQ(back.per_server_dim(), kD);
  EXPECT_EQ(back.n_servers(), kS);
  EXPECT_EQ(back.kernel.snapshot(), m.kernel.snapshot());
  EXPECT_EQ(back.stdz.mean(), m.stdz.mean());
  EXPECT_EQ(back.stdz.inv_std(), m.stdz.inv_std());
  expect_same_predictions(m, back);
}

TEST(ModelFormat, AttentionRoundtripIsExact) {
  const ServingModel m = tiny_attention_model(8);
  std::stringstream ss(serialize(m));
  const ServingModel back = load_model(ss);
  EXPECT_EQ(back.kind, ServingModel::Kind::kAttention);
  EXPECT_EQ(back.attention.snapshot(), m.attention.snapshot());
  expect_same_predictions(m, back);
}

TEST(ModelFormat, EveryTruncationIsRejected) {
  const std::string image = serialize(tiny_kernel_model(3));
  ASSERT_GT(image.size(), 100u);
  for (std::size_t len = 0; len < image.size(); ++len) {
    std::stringstream ss(image.substr(0, len));
    EXPECT_THROW(load_model(ss), std::runtime_error) << "prefix length " << len;
  }
}

TEST(ModelFormat, EverySingleBitFlipIsRejected) {
  const std::string image = serialize(tiny_kernel_model(4));
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = image;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      std::stringstream ss(corrupt);
      EXPECT_THROW(load_model(ss), std::runtime_error)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(ModelFormat, HostileHeaderSizesAreRefusedBeforeAllocation) {
  // A forged header claiming absurd widths must be rejected by the bounds
  // checks, not by an attempted multi-gigabyte allocation.
  auto forge = [](std::uint32_t n_classes, std::uint32_t dim, std::uint32_t servers,
                  std::uint32_t n_hidden) {
    std::string img = "QIFM";
    auto put32 = [&img](std::uint32_t v) {
      img.append(reinterpret_cast<const char*>(&v), 4);
    };
    put32(1);  // format version
    put32(0);  // kind = kernel
    put32(n_classes);
    put32(dim);
    put32(servers);
    put32(n_hidden);
    // Deliberately no payload: the size fields alone must trip the guard.
    return img;
  };
  const std::uint32_t kHuge = 0x7fffffff;
  for (const std::string& img :
       {forge(kHuge, 3, 2, 1), forge(2, kHuge, 2, 1), forge(2, 3, kHuge, 1),
        forge(2, 3, 2, kHuge)}) {
    std::stringstream ss(img);
    EXPECT_THROW(load_model(ss), std::runtime_error);
  }
  std::stringstream not_qifm("QXFM garbage");
  EXPECT_THROW(load_model(not_qifm), std::runtime_error);
}

TEST(ModelFormat, TextBundleImportMatchesNetwork) {
  // The text "qif-model 1" bundle (TrainingServer::save layout) imports
  // into an equivalent serving bundle.
  const ServingModel m = tiny_kernel_model(12);
  std::stringstream text;
  text << "qif-model 1\n" << m.n_classes << '\n';
  m.kernel.save(text);
  m.stdz.save(text);
  const ServingModel imported = import_text_model(text);
  EXPECT_EQ(imported.kind, ServingModel::Kind::kKernel);
  EXPECT_EQ(imported.n_classes, m.n_classes);
  expect_same_predictions(m, imported);

  std::stringstream garbage("not-a-model 1\n");
  EXPECT_THROW(import_text_model(garbage), std::runtime_error);
}

TEST(ModelRegistry, PublishAssignsAscendingVersionsAndRefreshPicksHighest) {
  const std::string dir = fresh_dir("publish");
  ModelRegistry registry(dir, kD);
  EXPECT_EQ(registry.refresh(), 0u);
  EXPECT_EQ(registry.current(), nullptr);
  EXPECT_EQ(registry.publish(tiny_kernel_model(1)), 1u);
  EXPECT_EQ(registry.publish(tiny_kernel_model(2)), 2u);
  EXPECT_EQ(registry.list_versions(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(registry.refresh(), 2u);
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->version, 2u);
  // The published v2 image must load back equal to what was published.
  expect_same_predictions(tiny_kernel_model(2), *registry.current());
}

TEST(ModelRegistry, CorruptNewestFallsBackToNextValidVersion) {
  const std::string dir = fresh_dir("fallback");
  ModelRegistry registry(dir, kD);
  registry.publish(tiny_kernel_model(5));
  {
    std::ofstream bad(dir + "/v2.qifm", std::ios::binary);
    bad << "QIFM this is not a model";
  }
  EXPECT_EQ(registry.refresh(), 1u) << "corrupt v2 must fall back to v1";
  ASSERT_NE(registry.current(), nullptr);
  EXPECT_EQ(registry.current()->version, 1u);
}

TEST(ModelRegistry, RefreshKeepsWarmModelWhenEverythingOnDiskIsBad) {
  const std::string dir = fresh_dir("warm");
  ModelRegistry registry(dir, kD);
  registry.publish(tiny_kernel_model(6));
  ASSERT_EQ(registry.refresh(), 1u);
  const auto warm = registry.current();
  // Truncate the only image on disk: refresh must fail to load it but
  // keep the previously live model serving.
  std::filesystem::resize_file(dir + "/v1.qifm", 10);
  EXPECT_EQ(registry.refresh(), 1u);
  EXPECT_EQ(registry.current(), warm);
}

TEST(ModelRegistry, SchemaWidthMismatchIsSkippedOnRefresh) {
  const std::string dir = fresh_dir("schema");
  {
    ModelRegistry writer(dir);  // no schema check on the writing side
    writer.publish(tiny_kernel_model(9));
  }
  ModelRegistry registry(dir, kD + 1);  // serving schema is wider
  EXPECT_EQ(registry.refresh(), 0u) << "width-incompatible model must not go live";
  EXPECT_EQ(registry.current(), nullptr);
}

TEST(ServingModel, ValidateFeatureWidthNamesBothWidths) {
  const ServingModel m = tiny_kernel_model(10);
  EXPECT_NO_THROW(m.validate_feature_width(kD));
  EXPECT_NO_THROW(m.validate_feature_width(0));  // 0 disables the check
  try {
    m.validate_feature_width(kD + 37);
    FAIL() << "width mismatch must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(kD)), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(kD + 37)), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace qif::serve
