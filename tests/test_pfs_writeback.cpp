// Tests for the write-back cache: absorption, dirty throttling, deficit
// round robin admission, and extent coalescing.
#include <gtest/gtest.h>

#include "qif/pfs/disk.hpp"
#include "qif/pfs/writeback.hpp"
#include "qif/sim/simulation.hpp"

namespace qif::pfs {
namespace {

DiskParams fast_disk() {
  DiskParams p;
  p.service_jitter = 0.0;
  return p;
}

TEST(Writeback, SmallWriteAcksAtMemorySpeed) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  WritebackCache cache(s, disk, wp);
  sim::SimTime acked = -1;
  cache.write(0, 1 << 20, [&] { acked = s.now(); });
  s.run_until(sim::kSecond);
  const double expected_s =
      sim::to_seconds(wp.ack_overhead) + static_cast<double>(1 << 20) / wp.memcpy_rate_bps;
  EXPECT_NEAR(sim::to_seconds(acked), expected_s, 1e-5);
  // Far faster than the disk path (~7 ms for 1 MiB + seek).
  EXPECT_LT(sim::to_millis(acked), 1.0);
}

TEST(Writeback, DataEventuallyReachesDisk) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackCache cache(s, disk, WritebackParams{});
  cache.write(0, 8 << 20, nullptr);
  s.run_all();
  EXPECT_EQ(cache.dirty_bytes(), 0);
  EXPECT_EQ(cache.total_flushed(), 8 << 20);
  EXPECT_EQ(disk.counters().sectors_written, (8 << 20) / 512);
}

TEST(Writeback, ThrottlesWhenDirtyLimitExceeded) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  wp.dirty_limit_bytes = 4 << 20;
  wp.dirty_target_bytes = 2 << 20;
  WritebackCache cache(s, disk, wp);
  int acked = 0;
  for (int i = 0; i < 16; ++i) {
    cache.write(static_cast<std::int64_t>(i) << 20, 1 << 20, [&] { ++acked; });
  }
  // Immediately, only the writes under the limit are absorbed.
  s.run_until(5 * sim::kMillisecond);
  EXPECT_LT(acked, 16);
  EXPECT_TRUE(cache.throttled());
  s.run_all();
  EXPECT_EQ(acked, 16);
  EXPECT_FALSE(cache.throttled());
}

TEST(Writeback, DeficitRoundRobinFavorsSmallWriters) {
  // A small write queued behind a large backlog must be admitted after
  // roughly its *own* share of flush progress, not the whole backlog.
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  wp.dirty_limit_bytes = 2 << 20;
  wp.dirty_target_bytes = 1 << 20;
  WritebackCache cache(s, disk, wp);
  // Saturate with big writers.
  for (int i = 0; i < 8; ++i) {
    cache.write(static_cast<std::int64_t>(i) * (4 << 20), 4 << 20, nullptr);
  }
  sim::SimTime small_acked = -1;
  sim::SimTime big_acked = -1;
  cache.write(100ll << 20, 4096, [&] { small_acked = s.now(); });
  cache.write(200ll << 20, 4 << 20, [&] { big_acked = s.now(); });
  s.run_all();
  ASSERT_GE(small_acked, 0);
  ASSERT_GE(big_acked, 0);
  EXPECT_LT(small_acked, big_acked);
}

TEST(Writeback, OversizedWriteCannotDeadlock) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  wp.dirty_limit_bytes = 1 << 20;
  wp.dirty_target_bytes = 512 << 10;
  WritebackCache cache(s, disk, wp);
  bool acked = false;
  cache.write(0, 8 << 20, [&] { acked = true; });  // 8x the limit
  s.run_all();
  EXPECT_TRUE(acked);
}

TEST(Writeback, ContiguousWritesCoalesceIntoOneExtentFlush) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  wp.flush_chunk_bytes = 16 << 20;  // big enough to flush in one go
  WritebackCache cache(s, disk, wp);
  for (int i = 0; i < 8; ++i) {
    cache.write(static_cast<std::int64_t>(i) << 20, 1 << 20, nullptr);
  }
  s.run_all();
  // All 8 MiB contiguous: few large flush writes rather than 8 scattered.
  EXPECT_LE(disk.counters().writes_completed, 3);
  EXPECT_EQ(cache.total_flushed(), 8 << 20);
}

TEST(Writeback, AbsorbedAndFlushedTotalsAgree) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 2);
  WritebackCache cache(s, disk, WritebackParams{});
  sim::Rng rng(4);
  std::int64_t total = 0;
  for (int i = 0; i < 50; ++i) {
    const std::int64_t len = rng.uniform_int(512, 1 << 20);
    total += len;
    cache.write(rng.uniform_int(0, 1ll << 32), len, nullptr);
  }
  s.run_all();
  EXPECT_EQ(cache.total_absorbed(), total);
  // Overlapping random extents may coalesce, so flushed <= absorbed but
  // everything dirty must drain.
  EXPECT_EQ(cache.dirty_bytes(), 0);
  EXPECT_GT(cache.total_flushed(), 0);
}

TEST(Writeback, ThrottledWritersCountGauge) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  wp.dirty_limit_bytes = 1 << 20;
  wp.dirty_target_bytes = 512 << 10;
  WritebackCache cache(s, disk, wp);
  for (int i = 0; i < 5; ++i) {
    cache.write(static_cast<std::int64_t>(i) * (2 << 20), 2 << 20, nullptr);
  }
  EXPECT_GE(cache.throttled_writers(), 3u);
  s.run_all();
  EXPECT_EQ(cache.throttled_writers(), 0u);
}

TEST(Writeback, ForgetDropsDirtyRange) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  wp.background_flush_delay = 10 * sim::kSecond;  // keep data dirty
  WritebackCache cache(s, disk, wp);
  cache.write(0, 8 << 20, nullptr);
  s.run_until(sim::kMillisecond * 50);
  EXPECT_EQ(cache.dirty_bytes(), 8 << 20);
  cache.forget(2 << 20, 4 << 20);  // carve the middle out
  EXPECT_EQ(cache.dirty_bytes(), 4 << 20);
  cache.forget(0, 16 << 20);  // everything else
  EXPECT_EQ(cache.dirty_bytes(), 0);
  cache.forget(0, 1 << 20);  // idempotent on clean ranges
  EXPECT_EQ(cache.dirty_bytes(), 0);
}

TEST(Writeback, ForgetSplitTailStillFlushes) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  wp.background_flush_delay = 200 * sim::kMillisecond;
  WritebackCache cache(s, disk, wp);
  cache.write(0, 8 << 20, nullptr);
  cache.forget(0, 4 << 20);
  s.run_all();
  EXPECT_EQ(cache.dirty_bytes(), 0);
  // Only the surviving tail hit the media.
  EXPECT_EQ(disk.counters().sectors_written, (4 << 20) / 512);
}

TEST(Writeback, LazyFlushCoalescesLightWriters) {
  sim::Simulation s;
  DiskModel disk(s, fast_disk(), 1);
  WritebackParams wp;
  WritebackCache cache(s, disk, wp);
  // 8 contiguous small writes land well under the target: the flusher
  // waits out the expiry delay and issues few, large, merged writes.
  for (int i = 0; i < 8; ++i) {
    cache.write(static_cast<std::int64_t>(i) * 4096, 4096, nullptr);
  }
  s.run_all();
  EXPECT_EQ(cache.total_flushed(), 8 * 4096);
  const auto c = disk.counters();
  EXPECT_LE(c.writes_completed - c.write_merges, 2);
}

// Property: under any load mix, every ack fires and dirty drains to zero.
class WritebackDrainTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WritebackDrainTest, AllWritesAckAndDrain) {
  sim::Simulation s;
  DiskModel disk(s, DiskParams{}, GetParam());
  WritebackParams wp;
  wp.dirty_limit_bytes = 4 << 20;
  wp.dirty_target_bytes = 2 << 20;
  WritebackCache cache(s, disk, wp);
  sim::Rng rng(GetParam() * 13);
  int acked = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    cache.write(rng.uniform_int(0, 1ll << 34), rng.uniform_int(512, 3 << 20),
                [&] { ++acked; });
  }
  s.run_all();
  EXPECT_EQ(acked, n);
  EXPECT_EQ(cache.dirty_bytes(), 0);
  EXPECT_EQ(cache.throttled_writers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WritebackDrainTest, ::testing::Values(1u, 7u, 21u, 99u));

}  // namespace
}  // namespace qif::pfs
