// Property sweep: every canonical workload must run end to end through
// the scenario pipeline — completing, tracing every rank, producing
// well-formed monitor features, and replaying deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "qif/core/scenario.hpp"
#include "qif/workloads/registry.hpp"

namespace qif::core {
namespace {

class WorkloadScenarioTest : public ::testing::TestWithParam<std::string> {};

ScenarioConfig small_config(const std::string& workload) {
  ScenarioConfig cfg;
  cfg.cluster = testbed_cluster_config(31);
  cfg.target.workload = workload;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = 5;
  cfg.target.scale = 0.25;
  cfg.horizon = 300 * sim::kSecond;
  return cfg;
}

TEST_P(WorkloadScenarioTest, RunsToCompletionAndTracesEveryRank) {
  const ScenarioResult res = run_scenario(small_config(GetParam()));
  ASSERT_TRUE(res.target_finished) << GetParam();
  EXPECT_GT(res.target_completion, 0);
  EXPECT_GE(res.target_body_start, 0);
  EXPECT_LE(res.target_body_start, res.target_completion);
  std::set<pfs::Rank> ranks;
  for (const auto& r : res.trace.records()) {
    EXPECT_GE(r.start, 0);
    EXPECT_GE(r.end, r.start);
    ranks.insert(r.rank);
  }
  EXPECT_EQ(ranks.size(), 4u) << GetParam();
}

TEST_P(WorkloadScenarioTest, OpIndicesAreDensePerRank) {
  const ScenarioResult res = run_scenario(small_config(GetParam()));
  const auto sorted = res.trace.sorted_for_job(0);
  pfs::Rank rank = -1;
  std::int64_t expected = 0;
  for (const auto& r : sorted) {
    if (r.rank != rank) {
      rank = r.rank;
      expected = 0;
    }
    EXPECT_EQ(r.op_index, expected) << GetParam() << " rank " << r.rank;
    ++expected;
  }
}

TEST_P(WorkloadScenarioTest, WindowFeaturesAreFiniteAndPlausible) {
  const ScenarioResult res = run_scenario(small_config(GetParam()));
  ASSERT_FALSE(res.window_features.empty()) << GetParam();
  const monitor::MetricSchema schema;
  for (std::size_t i = 0; i < res.window_features.size(); ++i) {
    const std::vector<double> f = res.window_features.row_vector(i);
    ASSERT_EQ(f.size(), 7u * static_cast<std::size_t>(schema.dim()));
    for (std::size_t j = 0; j < f.size(); ++j) {
      EXPECT_TRUE(std::isfinite(f[j])) << GetParam() << " feature " << j;
      // Counts, byte sums, times and their aggregates are all non-negative.
      EXPECT_GE(f[j], 0.0) << GetParam() << " feature " << j;
    }
  }
}

TEST_P(WorkloadScenarioTest, ReplayIsBitIdentical) {
  const ScenarioResult a = run_scenario(small_config(GetParam()));
  const ScenarioResult b = run_scenario(small_config(GetParam()));
  EXPECT_EQ(a.target_completion, b.target_completion);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.records()[i].end, b.trace.records()[i].end);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadScenarioTest,
                         ::testing::ValuesIn(workloads::known_workloads()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace qif::core
