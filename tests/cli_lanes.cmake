# Drives the qif CLI's lane/topology surface end to end:
#   - `--lanes N` prints the same trace fingerprint for every valid N
#     (including on a custom --topology shape), the CLI-level face of the
#     lane engine's bit-identity contract;
#   - invalid partitions (--lanes 0, --lanes > OSS count, malformed
#     --topology) are rejected with a non-zero exit and a clear message.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_ok outvar)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${outvar} "${out}" PARENT_SCOPE)
endfunction()

function(run_fail_matching pattern)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "command unexpectedly succeeded: ${ARGN}\n${out}")
  endif()
  if(NOT "${out}${err}" MATCHES "${pattern}")
    message(FATAL_ERROR "command failed without '${pattern}': ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

function(extract_fp outvar text)
  if(NOT "${text}" MATCHES "solo trace fp: ([0-9a-f]+)")
    message(FATAL_ERROR "no trace fingerprint in output:\n${text}")
  endif()
  set(${outvar} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

# Fingerprint equality across lane counts on the testbed shape (3 OSS
# groups, so 1..3 data lanes are all valid).
run_ok(out1 ${QIF_CLI} run ior-easy-write --scale 0.25 --lanes 1)
extract_fp(fp1 "${out1}")
foreach(lanes 2 3)
  run_ok(outn ${QIF_CLI} run ior-easy-write --scale 0.25 --lanes ${lanes})
  extract_fp(fpn "${outn}")
  if(NOT fpn STREQUAL fp1)
    message(FATAL_ERROR "--lanes ${lanes} fingerprint ${fpn} != --lanes 1 ${fp1}")
  endif()
endforeach()

# Same contract on a custom topology (8 clients x 4 OSS x 2 OSTs).
run_ok(t1 ${QIF_CLI} run mdt-easy-write --scale 0.25 --topology 8x4x2 --lanes 1)
run_ok(t4 ${QIF_CLI} run mdt-easy-write --scale 0.25 --topology 8x4x2 --lanes 4)
extract_fp(tfp1 "${t1}")
extract_fp(tfp4 "${t4}")
if(NOT tfp4 STREQUAL tfp1)
  message(FATAL_ERROR "topology 8x4x2: --lanes 4 fp ${tfp4} != --lanes 1 fp ${tfp1}")
endif()

# Invalid partitions are rejected with a clear error.
run_fail_matching("need at least 1 data lane" ${QIF_CLI} run ior-easy-write --lanes 0)
run_fail_matching("only 3 OSS groups" ${QIF_CLI} run ior-easy-write --lanes 4)
run_fail_matching("bad --topology" ${QIF_CLI} run ior-easy-write --topology 7x3)

# dump-trace accepts the same knobs and produces identical traces.
run_ok(ignored ${QIF_CLI} dump-trace ior-easy-write --scale 0.25 --lanes 2
       --out lanes2.dxt)
run_ok(ignored ${QIF_CLI} dump-trace ior-easy-write --scale 0.25 --lanes 1
       --out lanes1.dxt)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK_DIR}/lanes1.dxt ${WORK_DIR}/lanes2.dxt RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "dump-trace output differs between --lanes 1 and --lanes 2")
endif()
