#!/usr/bin/env bash
# Event-engine benchmark: scheduler micro-benchmarks + one campaign scenario
# + the parallel-lane scaling curve.
#
# Builds the default configuration, runs the event-engine, FairLink, and
# campaign benchmarks, and writes BENCH_sim.json:
#   engine_items_per_sec:  schedule/fire, cancel-churn, and timeout rates
#   fairlink_items_per_sec: flows settled per second at 64 / 512 flows
#   scenario_ms:           one end-to-end scenario and one campaign scenario
#   speedup_vs_pre_rebuild: measured rates divided by the pre-rebuild
#                          engine's rates (std::function events + lazy
#                          tombstone cancellation), recorded on the same
#                          machine right before the rebuild landed.
#   lane_scaling:          wall time of one large-cluster scenario
#                          (1008 clients x 16 OSS x 8 OSTs = 128 OSTs,
#                          1006 interference instances) at --lanes 1/2/4/8,
#                          plus the host's core count.  Every lane count
#                          must print the same trace fingerprint — the
#                          curve is only honest if the partitioning changed
#                          nothing — and the script fails if they diverge.
#
# Pass a different build dir as $1; pass --smoke (as $1 or $2) for a fast
# CI-gate run that only checks the benchmarks still execute and that the
# --lanes 4 fingerprint equals --lanes 1 on a small scenario.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
MIN_TIME="0.5"
SMOKE=0
for arg in "$@"; do
  case "${arg}" in
    --smoke) SMOKE=1; MIN_TIME="0.01" ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

OUT_JSON="BENCH_sim.json"
RAW_JSON="${BUILD_DIR}/bench_sim_raw.json"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target micro_benchmarks qif_cli > /dev/null

QIF="./${BUILD_DIR}/tools/qif"

# Prints the solo trace fingerprint of one run; arguments are appended to
# `qif run`.
lane_fp() {
  "${QIF}" run "$@" | sed -n 's/^solo trace fp: //p'
}

"./${BUILD_DIR}/bench/micro_benchmarks" \
  --benchmark_filter='BM_EventEngine|BM_FairLink|BM_EndToEndScenario|BM_CampaignScenario' \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_out="${RAW_JSON}" \
  --benchmark_out_format=json

if [[ "${SMOKE}" -eq 1 ]]; then
  # Lane smoke: the partitioned engine must reproduce the sequential
  # reference bit for bit (here: --lanes 4 vs --lanes 1 on a 4-OSS shape).
  fp1="$(lane_fp ior-easy-write --scale 0.25 --topology 8x4x2 --lanes 1)"
  fp4="$(lane_fp ior-easy-write --scale 0.25 --topology 8x4x2 --lanes 4)"
  if [[ -z "${fp1}" || "${fp1}" != "${fp4}" ]]; then
    echo "lane smoke FAILED: --lanes 4 fp '${fp4}' != --lanes 1 fp '${fp1}'" >&2
    exit 1
  fi
  echo "lane smoke OK (--lanes 4 fp == --lanes 1 fp: ${fp1})"
  echo "smoke OK (not overwriting ${OUT_JSON})"
  exit 0
fi

# Lane scaling curve: >= 1000 clients and >= 128 OSTs, all data lanes
# loaded by one interference instance per remaining client node.
LANE_TOPO="1008x16x8"
LANE_ARGS=(ior-easy-write --topology "${LANE_TOPO}" --noise ior-easy-write
           --instances 1006 --scale 4)
LANE_TSV="${BUILD_DIR}/bench_lanes.tsv"
: > "${LANE_TSV}"
lane_fp_ref=""
for lanes in 1 2 4 8; do
  start_ns=$(date +%s%N)
  fp="$(lane_fp "${LANE_ARGS[@]}" --lanes "${lanes}")"
  wall_ms=$(( (($(date +%s%N) - start_ns)) / 1000000 ))
  if [[ -z "${lane_fp_ref}" ]]; then
    lane_fp_ref="${fp}"
  elif [[ "${fp}" != "${lane_fp_ref}" ]]; then
    echo "lane curve FAILED: --lanes ${lanes} fp ${fp} != --lanes 1 fp ${lane_fp_ref}" >&2
    exit 1
  fi
  echo "lanes ${lanes}: ${wall_ms} ms (fp ${fp})"
  printf '%s\t%s\t%s\n' "${lanes}" "${wall_ms}" "${fp}" >> "${LANE_TSV}"
done

python3 - "${RAW_JSON}" "${OUT_JSON}" "${LANE_TSV}" "${LANE_TOPO}" "$(nproc)" <<'EOF'
import json, sys

# Pre-rebuild engine rates (std::function heap events, lazy tombstone
# cancellation), measured on this repo's reference machine with
# --benchmark_min_time=0.5 immediately before the allocation-free engine
# landed.  items/s for throughput benches, ms for scenario benches.
PRE_REBUILD = {
    "BM_EventEngine/1000": 15.55e6,
    "BM_EventEngine/100000": 5.40e6,
    "BM_EventEngineCancelChurn/1000": 7.26e6,
    "BM_EventEngineCancelChurn/16384": 0.925e6,
    "BM_EventEngineTimeouts/1000": 4.22e6,
    "BM_EventEngineTimeouts/16384": 0.370e6,
    "BM_FairLink/64": 9.80e6,
    "BM_FairLink/512": 2.38e6,
    "BM_EndToEndScenario": 0.124,
    "BM_CampaignScenario": 0.804,
}

raw = json.load(open(sys.argv[1]))
engine, fairlink, scenario, speedup = {}, {}, {}, {}
for b in raw["benchmarks"]:
    name = b["name"]
    key = name.replace("BM_", "").replace("/", "_")
    if "items_per_second" in b:
        rate = b["items_per_second"]
        bucket = fairlink if name.startswith("BM_FairLink") else engine
        bucket[key] = round(rate / 1e6, 3)
        if name in PRE_REBUILD:
            speedup[key] = round(rate / PRE_REBUILD[name], 2)
    else:
        ms = b["real_time"]
        scenario[key] = round(ms, 3)
        if name in PRE_REBUILD:
            # For latency benches, speedup = old_time / new_time.
            speedup[key] = round(PRE_REBUILD[name] / ms, 2)

# Lane scaling curve measured by the shell loop above.  Recorded honestly:
# wall times on a single-core host show no parallel speedup (the lane
# workers time-slice one CPU and pay the barrier overhead); the curve's
# verified claim on such hosts is the fingerprint equality, with the
# speedup left for multi-core machines re-running this script.
lanes = {}
fingerprint = None
for line in open(sys.argv[3]):
    n, wall_ms, fp = line.split()
    lanes[n] = int(wall_ms)
    fingerprint = fp
host_cores = int(sys.argv[5])
lane_scaling = {
    "topology_clients_x_oss_x_osts": sys.argv[4],
    "host_cores": host_cores,
    # Machine-readable honesty flag: consumers must not read a parallel
    # speedup out of wall_ms_by_lanes when the host had one core.
    "parallel_speedup_valid": host_cores > 1,
    "wall_ms_by_lanes": lanes,
    "trace_fingerprint": fingerprint,
    "note": "all lane counts produced identical traces"
    + ("; host has a single core, so no parallel speedup is expected or claimed"
       if host_cores == 1 else ""),
}

out = {
    "engine_mitems_per_sec": engine,
    "fairlink_mitems_per_sec": fairlink,
    "scenario_ms": scenario,
    "speedup_vs_pre_rebuild": speedup,
    "lane_scaling": lane_scaling,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
print(json.dumps(out, indent=2))
EOF

echo "wrote ${OUT_JSON}"
