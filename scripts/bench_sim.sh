#!/usr/bin/env bash
# Event-engine benchmark: scheduler micro-benchmarks + one campaign scenario.
#
# Builds the default configuration, runs the event-engine, FairLink, and
# campaign benchmarks, and writes BENCH_sim.json:
#   engine_items_per_sec:  schedule/fire, cancel-churn, and timeout rates
#   fairlink_items_per_sec: flows settled per second at 64 / 512 flows
#   scenario_ms:           one end-to-end scenario and one campaign scenario
#   speedup_vs_pre_rebuild: measured rates divided by the pre-rebuild
#                          engine's rates (std::function events + lazy
#                          tombstone cancellation), recorded on the same
#                          machine right before the rebuild landed.
#
# Pass a different build dir as $1; pass --smoke (as $1 or $2) for a fast
# CI-gate run that only checks the benchmarks still execute.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
MIN_TIME="0.5"
SMOKE=0
for arg in "$@"; do
  case "${arg}" in
    --smoke) SMOKE=1; MIN_TIME="0.01" ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

OUT_JSON="BENCH_sim.json"
RAW_JSON="${BUILD_DIR}/bench_sim_raw.json"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target micro_benchmarks > /dev/null

"./${BUILD_DIR}/bench/micro_benchmarks" \
  --benchmark_filter='BM_EventEngine|BM_FairLink|BM_EndToEndScenario|BM_CampaignScenario' \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_out="${RAW_JSON}" \
  --benchmark_out_format=json

if [[ "${SMOKE}" -eq 1 ]]; then
  echo "smoke OK (not overwriting ${OUT_JSON})"
  exit 0
fi

python3 - "${RAW_JSON}" "${OUT_JSON}" <<'EOF'
import json, sys

# Pre-rebuild engine rates (std::function heap events, lazy tombstone
# cancellation), measured on this repo's reference machine with
# --benchmark_min_time=0.5 immediately before the allocation-free engine
# landed.  items/s for throughput benches, ms for scenario benches.
PRE_REBUILD = {
    "BM_EventEngine/1000": 15.55e6,
    "BM_EventEngine/100000": 5.40e6,
    "BM_EventEngineCancelChurn/1000": 7.26e6,
    "BM_EventEngineCancelChurn/16384": 0.925e6,
    "BM_EventEngineTimeouts/1000": 4.22e6,
    "BM_EventEngineTimeouts/16384": 0.370e6,
    "BM_FairLink/64": 9.80e6,
    "BM_FairLink/512": 2.38e6,
    "BM_EndToEndScenario": 0.124,
    "BM_CampaignScenario": 0.804,
}

raw = json.load(open(sys.argv[1]))
engine, fairlink, scenario, speedup = {}, {}, {}, {}
for b in raw["benchmarks"]:
    name = b["name"]
    key = name.replace("BM_", "").replace("/", "_")
    if "items_per_second" in b:
        rate = b["items_per_second"]
        bucket = fairlink if name.startswith("BM_FairLink") else engine
        bucket[key] = round(rate / 1e6, 3)
        if name in PRE_REBUILD:
            speedup[key] = round(rate / PRE_REBUILD[name], 2)
    else:
        ms = b["real_time"]
        scenario[key] = round(ms, 3)
        if name in PRE_REBUILD:
            # For latency benches, speedup = old_time / new_time.
            speedup[key] = round(PRE_REBUILD[name] / ms, 2)

out = {
    "engine_mitems_per_sec": engine,
    "fairlink_mitems_per_sec": fairlink,
    "scenario_ms": scenario,
    "speedup_vs_pre_rebuild": speedup,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
print(json.dumps(out, indent=2))
EOF

echo "wrote ${OUT_JSON}"
