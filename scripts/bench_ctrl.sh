#!/usr/bin/env bash
# Closed-loop mitigation benchmark: on-vs-off campaign studies.
#
# Runs `qif campaign custom --mitigate` on a contended ior-easy-write
# campaign (15-instance-class interference cases drawn by the campaign
# driver) and records the on-vs-off comparison the CLI computes over
# shared baselines, healthy and under the PR-5 reference fault plan.
# Writes BENCH_ctrl.json:
#   headline:  token:rate=64 (rate-constrained token bucket), healthy and
#              faulted — the script FAILS unless mitigation-on beats off
#              on BOTH mean aggregate degradation and victim p99 latency,
#              with a nonzero throttle count (the mitigation-wins gate)
#   secondary: the default token spec (256 MiB/s only bites bursts — a
#              much smaller win, recorded to show why the headline rate
#              is constrained) and the probe policy (its concurrency cap
#              never binds for this shape's read-noise aggressors, so it
#              is a recorded no-op, not a win — honesty entry with a
#              machine-readable `binds` flag)
#
# Pass a different build dir as $1; pass --smoke (as $1 or $2) for a fast
# CI-gate run that only checks the headline healthy study still wins.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
SMOKE=0
for arg in "$@"; do
  case "${arg}" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

OUT_JSON="BENCH_ctrl.json"
HEADLINE_SPEC="token:rate=64"
FAULT_PLAN="slow:ost=0,start=2,dur=40,factor=6;stall:ost=1,start=10,dur=8"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target qif_cli > /dev/null

QIF="./${BUILD_DIR}/tools/qif"
WORK="${BUILD_DIR}/bench_ctrl"
mkdir -p "${WORK}"

# study NAME RICHNESS SPEC [extra args...]: one on-vs-off campaign; keeps
# the CLI's machine-readable --json summary line in ${WORK}/NAME.json.
study() {
  local name="$1" richness="$2" spec="$3"
  shift 3
  "${QIF}" campaign custom --workload ior-easy-write \
      --richness "${richness}" --seed 7 --mitigate "${spec}" --json "$@" \
      --out "${WORK}/${name}.csv" | tee "${WORK}/${name}.log"
  grep '^{' "${WORK}/${name}.log" > "${WORK}/${name}.json"
}

# gate NAME: the mitigation-wins check — on must beat off on both mean
# degradation and victim p99, and must actually have throttled something.
gate() {
  python3 - "${WORK}/$1.json" "$1" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
ok = (r["on_deg"] < r["off_deg"] and r["on_p99_ms"] < r["off_p99_ms"]
      and r["throttle_waits"] > 0)
print(f"{sys.argv[2]}: deg {r['off_deg']:.3f} -> {r['on_deg']:.3f}, "
      f"victim p99 {r['off_p99_ms']:.3f} -> {r['on_p99_ms']:.3f} ms, "
      f"{r['throttle_waits']} throttle waits "
      f"... {'OK' if ok else 'FAILED (mitigation did not win)'}")
sys.exit(0 if ok else 1)
EOF
}

if [[ "${SMOKE}" -eq 1 ]]; then
  study smoke 0.25 "${HEADLINE_SPEC}"
  gate smoke
  echo "smoke OK (not overwriting ${OUT_JSON})"
  exit 0
fi

study healthy 1 "${HEADLINE_SPEC}"
study faulted 1 "${HEADLINE_SPEC}" --faults "${FAULT_PLAN}"
study default_token 1 "token"
study probe 1 "probe"

gate healthy
gate faulted

python3 - "${OUT_JSON}" "${WORK}" "${FAULT_PLAN}" <<'EOF'
import json, sys

out_path, work, fault_plan = sys.argv[1:4]
load = lambda name: json.load(open(f"{work}/{name}.json"))

def entry(r):
    return {
        "policy": r["policy"],
        "mean_degradation": {"off": round(r["off_deg"], 3),
                             "on": round(r["on_deg"], 3)},
        "victim_p99_ms": {"off": round(r["off_p99_ms"], 3),
                          "on": round(r["on_p99_ms"], 3)},
        "throttle_waits": r["throttle_waits"],
        "throttle_delay_s": round(r["throttle_delay_s"], 3),
    }

healthy, faulted = load("healthy"), load("faulted")
default_token, probe = load("default_token"), load("probe")

out = {
    "campaign": "custom ior-easy-write, richness 1, seed 7 "
                "(on-vs-off twins over shared healthy baselines)",
    "healthy": entry(healthy),
    "faulted": {**entry(faulted), "fault_plan": fault_plan},
    # The gate the script enforced before writing this file: both headline
    # studies reduced mean degradation AND victim p99 with nonzero waits.
    "mitigation_wins": True,
    "secondary": {
        "default_token": {
            **entry(default_token),
            "note": "default 256 MiB/s rate only bites bursts; the "
                    "headline constrains it to 64 MiB/s",
        },
        "probe": {
            **entry(probe),
            # Honesty flag: the probing cap never binds for this shape's
            # read-noise aggressors (one data RPC outstanding at a time),
            # so the run is a recorded identity, not a claimed win.
            "binds": probe["throttle_waits"] > 0
                     or probe["on_deg"] != probe["off_deg"],
            "note": "concurrency cap does not bind for read-noise "
                    "aggressors on the testbed shape; recorded no-op",
        },
    },
}
json.dump(out, open(out_path, "w"), indent=2)
print(json.dumps(out, indent=2))
EOF

echo "wrote ${OUT_JSON}"
