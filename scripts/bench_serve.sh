#!/usr/bin/env bash
# Serving-layer benchmark: batched online inference vs the single-row sync
# baseline, plus the hot-swap-under-load run and the bit-identity gate.
#
# Builds the CLI and writes BENCH_serve.json:
#   identity:           `qif serve verify` results for both architectures —
#                       every batched reply replayed against a single-row
#                       sync prediction, mismatches must be 0.  This is the
#                       claim the benchmark numbers rest on: batching is a
#                       pure throughput transform, never a numeric one.
#   batched:            p50/p99/p999 latency and predictions/sec across a
#                       max_batch x producer-count matrix (closed-loop
#                       producers, 64 requests in flight each).
#   sync:               the same request count through the N=1 synchronous
#                       path — what a per-window OnlinePredictor deployment
#                       does today.
#   hot_swap_under_load: a batched run with the model registry hot-swapping
#                       every few ms; records swap count and how many
#                       requests each version served (never torn, never
#                       mixed within a batch — pinned by test_serve_service).
#   speedup:            best batched throughput (max_batch >= 32) over sync,
#                       with a machine-readable `valid` flag that is false
#                       on single-core hosts: there the batcher thread and
#                       the producers time-slice one CPU, so no batching
#                       speedup is expected or claimed — only the identity
#                       and latency-distribution results are meaningful.
#
# Pass a different build dir as $1; pass --smoke (as $1 or $2) for a fast
# CI-gate run that only enforces the bit-identity contract and does not
# overwrite BENCH_serve.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
SMOKE=0
REQUESTS=20000
for arg in "$@"; do
  case "${arg}" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

OUT_JSON="BENCH_serve.json"
RAW_JSONL="${BUILD_DIR}/bench_serve_raw.jsonl"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target qif_cli > /dev/null

QIF="./${BUILD_DIR}/tools/qif"

# Runs one labelled `qif serve` invocation and appends "label\tjson" to the
# raw line file.  `serve verify` exits 1 on any batched-vs-sync mismatch,
# so set -e turns a broken identity contract into a failed benchmark run.
run_tagged() {
  local label="$1"
  shift
  local out
  out="$("${QIF}" serve "$@" --json)"
  echo "${label}: ${out}"
  printf '%s\t%s\n' "${label}" "${out}" >> "${RAW_JSONL}"
}

if [[ "${SMOKE}" -eq 1 ]]; then
  # Identity gate only: both architectures, multi-producer, small batch so
  # several batch boundaries land inside the run.
  for arch in kernel attention; do
    out="$("${QIF}" serve verify --arch "${arch}" --requests 400 --producers 2 \
        --max-batch 8 --json)"
    echo "${arch}: ${out}"
    if [[ "${out}" != *'"identical": true'* ]]; then
      echo "serve smoke FAILED: batched replies diverged from sync (${arch})" >&2
      exit 1
    fi
  done
  echo "serve smoke OK (batched == sync, both architectures)"
  echo "smoke OK (not overwriting ${OUT_JSON})"
  exit 0
fi

: > "${RAW_JSONL}"

# Bit-identity first: the numbers below are only comparable because the
# batched path computes exactly what the sync path computes.
run_tagged identity_kernel verify --arch kernel --requests 2000 --producers 4
run_tagged identity_attention verify --arch attention --requests 2000 --producers 4

# Sync baseline, then the batched matrix.
run_tagged sync bench --sync --requests "${REQUESTS}"
for producers in 2 8; do
  for max_batch in 8 32 128; do
    run_tagged "batched_p${producers}_b${max_batch}" bench \
      --producers "${producers}" --max-batch "${max_batch}" \
      --requests "${REQUESTS}"
  done
done

# Hot swap under load: versions v1/v2 alternate every 5 ms while four
# producers keep the ring full.
run_tagged hot_swap bench --producers 4 --max-batch 32 --swap-every-ms 5 \
  --requests "${REQUESTS}"

python3 - "${RAW_JSONL}" "${OUT_JSON}" "$(nproc)" <<'EOF'
import json, sys

runs = {}
for line in open(sys.argv[1]):
    label, payload = line.rstrip("\n").split("\t", 1)
    runs[label] = json.loads(payload)

host_cores = int(sys.argv[3])

def latency(r):
    return {
        "requests": r["requests"],
        "throughput_rps": r["throughput_rps"],
        "mean_us": r["mean_us"],
        "p50_us": r["p50_us"],
        "p99_us": r["p99_us"],
        "p999_us": r["p999_us"],
    }

batched = {}
for label, r in runs.items():
    if not label.startswith("batched_"):
        continue
    batched[label.removeprefix("batched_")] = latency(r) | {
        "producers": r["producers"],
        "max_batch": r["max_batch"],
        "batches": r["batches"],
        "mean_batch_rows": r["mean_batch_rows"],
        "full_batches": r["full_batches"],
        "timeout_batches": r["timeout_batches"],
    }

sync = latency(runs["sync"])

# Speedup: best large-batch config vs sync.  Only claimed on multi-core
# hosts — on one core the batcher and the producers fight for the same
# CPU, so the honest statement there is the identity result plus the raw
# latency distributions, not a speedup.
best_label, best = max(
    ((label, r) for label, r in batched.items() if r["max_batch"] >= 32),
    key=lambda kv: kv[1]["throughput_rps"],
)
speedup = {
    "valid": host_cores > 1,
    "best_batched_config": best_label,
    "batched_over_sync": round(best["throughput_rps"] / sync["throughput_rps"], 2),
    "note": "batched and sync outputs are bit-identical (see identity)"
    + ("; host has a single core, so no batching speedup is expected or claimed"
       if host_cores == 1 else ""),
}

swap = runs["hot_swap"]
hot_swap = latency(swap) | {
    "swaps": swap["swaps"],
    "served_by_version": swap["by_version"],
}

identity = {
    arch: {
        "requests": runs[f"identity_{arch}"]["requests"],
        "batches": runs[f"identity_{arch}"]["batches"],
        "mismatches": runs[f"identity_{arch}"]["mismatches"],
        "identical": runs[f"identity_{arch}"]["identical"],
    }
    for arch in ("kernel", "attention")
}

out = {
    "host_cores": host_cores,
    "identity": identity,
    "sync": sync,
    "batched": batched,
    "hot_swap_under_load": hot_swap,
    "speedup": speedup,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
print(json.dumps(out, indent=2))
EOF

echo "wrote ${OUT_JSON}"
