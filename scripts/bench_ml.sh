#!/usr/bin/env bash
# ML hot-path benchmark: GEMM kernels + one full trainer epoch.
#
# Builds the default (portable) configuration, runs the GEMM and trainer
# micro-benchmarks, and writes BENCH_ml.json:
#   gemm_gflops: best blocked-GEMM rate per shape (and the naive baseline)
#   epoch_ms:    one training epoch (512 windows, 7 servers x 37 features)
# The blocked kernels dispatch on the CPU at runtime, so the portable build
# is the one worth measuring; pass a different build dir as $1 to compare
# (e.g. a -DQIF_NATIVE=ON tree).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_JSON="BENCH_ml.json"
RAW_JSON="${BUILD_DIR}/bench_ml_raw.json"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target micro_benchmarks > /dev/null

"./${BUILD_DIR}/bench/micro_benchmarks" \
  --benchmark_filter='BM_Gemm|BM_TrainerEpoch' \
  --benchmark_min_time=0.2 \
  --benchmark_out="${RAW_JSON}" \
  --benchmark_out_format=json

python3 - "${RAW_JSON}" "${OUT_JSON}" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
gemm, epoch = {}, {}
for b in raw["benchmarks"]:
    name = b["name"]
    if name.startswith("BM_Gemm"):
        # BM_GemmBlocked/448/37/64/real_time -> kernel + shape key
        parts = name.split("/")
        kernel = parts[0].removeprefix("BM_Gemm").lower()
        shape = "x".join(parts[1:4])
        gemm.setdefault(shape, {})[kernel] = round(b["GFLOPS"] / 1e9, 3)
    elif name.startswith("BM_TrainerEpoch"):
        jobs = name.split("/")[1]
        epoch[f"jobs_{jobs}"] = round(b["real_time"], 3)

speedup = {s: round(v["blocked"] / v["naive"], 2)
           for s, v in gemm.items() if "naive" in v and "blocked" in v}
out = {"gemm_gflops": gemm, "gemm_speedup_blocked_vs_naive": speedup,
       "epoch_ms": epoch}
json.dump(out, open(sys.argv[2], "w"), indent=2)
print(json.dumps(out, indent=2))
EOF

echo "wrote ${OUT_JSON}"
