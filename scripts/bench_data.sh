#!/usr/bin/env bash
# Window data-plane benchmark: FeatureTable assemble/append/split plus the
# CSV (interop) vs .qds (native binary) persistence paths, the mmap
# zero-copy load, the compressed (qlz) .qds variant, and — with
# --streaming — the sharded/chunked training leg under a fixed RSS budget.
#
# Builds the portable configuration, runs bench/data_plane at richness 1
# and 4 (override with e.g. `bench_data.sh 0.5 1`), and writes
# BENCH_data.json.  Acceptance bars:
#   * load_speedup_qds_vs_csv >= 5 at richness 1 (columnar refactor),
#   * load_speedup_mmap_vs_buffered >= 1 (mmap at least matches the
#     buffered reader),
#   * qlz_ratio_vs_csv < 1 (compressed .qds undercuts the CSV it replaced),
#   * with --streaming: 10M synthetic windows train with peak RSS well
#     under the dataset's on-disk size (the 256 MiB page budget holds).
#
#   bench_data.sh [--streaming] [richness]...
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT_JSON="BENCH_data.json"
STREAMING_ROWS="${STREAMING_ROWS:-10000000}"
STREAMING_BUDGET_MIB="${STREAMING_BUDGET_MIB:-256}"

STREAMING=0
RICHNESS_ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--streaming" ]]; then
    STREAMING=1
  else
    RICHNESS_ARGS+=(--richness "$arg")
  fi
done
if [[ ${#RICHNESS_ARGS[@]} -eq 0 ]]; then
  RICHNESS_ARGS=(--richness 1 --richness 4)
fi

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target data_plane > /dev/null

"./${BUILD_DIR}/bench/data_plane" "${RICHNESS_ARGS[@]}" > "${OUT_JSON}.campaign"

if [[ "${STREAMING}" -eq 1 ]]; then
  # Separate process: peak RSS (ru_maxrss) is a whole-process high-water
  # mark, so the streaming leg must not inherit the campaign legs' pages.
  "./${BUILD_DIR}/bench/data_plane" \
    --streaming-rows "${STREAMING_ROWS}" \
    --streaming-budget-mib "${STREAMING_BUDGET_MIB}" > "${OUT_JSON}.streaming"
fi

python3 - "${OUT_JSON}" <<'EOF'
import json, os, sys
out_path = sys.argv[1]
out = json.load(open(out_path + ".campaign"))
os.remove(out_path + ".campaign")
if os.path.exists(out_path + ".streaming"):
    out.update(json.load(open(out_path + ".streaming")))
    os.remove(out_path + ".streaming")

# Feature-assembly hot-path before/after (instrumented head-to-head of the
# PR-5 tree vs this tree, same machine, richness 1, 1317 windows).  The
# campaign "assemble" wall time is >95% discrete-event simulation, so the
# monitor-path win does not move assemble_ms beyond run-to-run noise —
# recorded here as the micro numbers it actually is.  observe_ms includes
# ~identical per-op timing overhead on both sides, so read the delta, not
# the ratio.
out["assembly_hot_path_note"] = {
    "comment": ("fill_window resolves both monitors' window rows once and "
                "writes features via statics (no per-(window,server) map "
                "lookups); observe() caches the window cell row and reuses "
                "its scratch target buffer (no per-op allocation)"),
    "pr5_richness_1": {"observe_ms": 79.0, "fill_windows_ms": 2.1},
    "pr6_richness_1": {"observe_ms": 72.9, "fill_windows_ms": 1.6},
}

json.dump(out, open(out_path, "w"), indent=2)
print(json.dumps(out, indent=2))
for key, t in out.items():
    if key.startswith("richness_"):
        s = t["load_speedup_qds_vs_csv"]
        m = t["load_speedup_mmap_vs_buffered"]
        print(f"{key}: {t['windows']} windows, .qds load {s:.1f}x faster than CSV, "
              f"mmap {m:.1f}x vs buffered")
if "streaming" in out:
    t = out["streaming"]
    print(f"streaming: {t['rows']} rows ({t['disk_bytes']/2**20:.0f} MiB on disk) "
          f"trained with peak RSS {t['peak_rss_mib']:.0f} MiB "
          f"(budget {t['budget_mib']} MiB)")
EOF

echo "wrote ${OUT_JSON}"
