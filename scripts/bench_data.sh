#!/usr/bin/env bash
# Window data-plane benchmark: FeatureTable assemble/append/split plus the
# CSV (interop) vs .qds (native binary) persistence paths.
#
# Builds the portable configuration, runs bench/data_plane at richness 1
# and 4 (override with e.g. `bench_data.sh 0.5 1`), and writes
# BENCH_data.json.  The acceptance bar for the columnar refactor is
# load_speedup_qds_vs_csv >= 5 at richness 1: the binary reader block-reads
# whole columns where CSV re-parses every cell.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT_JSON="BENCH_data.json"

RICHNESS_ARGS=()
if [[ $# -gt 0 ]]; then
  for r in "$@"; do RICHNESS_ARGS+=(--richness "$r"); done
else
  RICHNESS_ARGS=(--richness 1 --richness 4)
fi

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target data_plane > /dev/null

"./${BUILD_DIR}/bench/data_plane" "${RICHNESS_ARGS[@]}" > "${OUT_JSON}"

python3 - "${OUT_JSON}" <<'EOF'
import json, sys
out = json.load(open(sys.argv[1]))
print(json.dumps(out, indent=2))
for key, t in out.items():
    s = t["load_speedup_qds_vs_csv"]
    print(f"{key}: {t['windows']} windows, .qds load {s:.1f}x faster than CSV")
EOF

echo "wrote ${OUT_JSON}"
