#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then the exec/campaign tests again
# under ThreadSanitizer to catch data races in the qif::exec thread pool
# and parallel campaign runner.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: standard build + ctest ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "=== tier-1: exec/campaign tests under TSan ==="
cmake -B build-tsan -S . -DQIF_SANITIZE=thread
cmake --build build-tsan -j --target test_exec test_core
./build-tsan/tests/test_exec
./build-tsan/tests/test_core --gtest_filter='Campaign.*'

echo "tier-1 OK"
