#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then the exec/campaign tests again
# under ThreadSanitizer to catch data races in the qif::exec thread pool,
# the parallel campaign runner, and the thread-parallel GEMM path.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: standard build + ctest ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "=== tier-1: exec/campaign/scheduler tests under TSan ==="
cmake -B build-tsan -S . -DQIF_SANITIZE=thread
cmake --build build-tsan -j --target test_exec test_core test_ml_gemm test_ml_trainer \
  test_sim_simulation test_sim_links test_export test_data_alloc
./build-tsan/tests/test_exec
./build-tsan/tests/test_core --gtest_filter='Campaign.*'
# Data-plane: parallel campaign shards block-append into one FeatureTable,
# and the .qds reader touches whole columns — both must stay race-free.
./build-tsan/tests/test_export
./build-tsan/tests/test_data_alloc
./build-tsan/tests/test_ml_gemm --gtest_filter='Gemm.Parallel*'
./build-tsan/tests/test_ml_trainer --gtest_filter='Trainer.ResultIsBitIdenticalAcrossJobCounts'
# The event engine itself is single-threaded, but campaign workers each run
# a private Simulation on pool threads — the slab/heap must stay free of
# cross-engine shared state.
./build-tsan/tests/test_sim_simulation
./build-tsan/tests/test_sim_links

echo "=== tier-1: benchmark smoke ==="
./scripts/bench_sim.sh --smoke

echo "tier-1 OK"
