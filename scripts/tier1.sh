#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then the exec/campaign tests again
# under ThreadSanitizer to catch data races in the qif::exec thread pool,
# the parallel campaign runner, and the thread-parallel GEMM path, and an
# AddressSanitizer leg over the .qds corruption-fuzz and reader tests so
# hostile bytes can never turn into a silent out-of-bounds read.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: standard build + ctest ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "=== tier-1: exec/campaign/scheduler tests under TSan ==="
cmake -B build-tsan -S . -DQIF_SANITIZE=thread
cmake --build build-tsan -j --target test_exec test_core test_ml_gemm test_ml_trainer \
  test_sim_simulation test_sim_links test_export test_data_alloc \
  test_campaign_faults test_pfs_faults test_sim_property test_streaming \
  test_sim_lanes test_serve_ring test_serve_service \
  test_ctrl_bucket test_ctrl_controller test_campaign_mitigate
./build-tsan/tests/test_exec
./build-tsan/tests/test_core --gtest_filter='Campaign.*'
# Data-plane: parallel campaign shards block-append into one FeatureTable,
# and the .qds reader touches whole columns — both must stay race-free.
./build-tsan/tests/test_export
./build-tsan/tests/test_data_alloc
./build-tsan/tests/test_ml_gemm --gtest_filter='Gemm.Parallel*'
./build-tsan/tests/test_ml_trainer --gtest_filter='Trainer.ResultIsBitIdenticalAcrossJobCounts'
# Chunked trainer: batches stream out of mmap'ed shards while the GEMM
# pool fans out — the shard access path must stay race-free.
./build-tsan/tests/test_streaming --gtest_filter='ChunkedTraining.*'
# The event engine itself is single-threaded, but campaign workers each run
# a private Simulation on pool threads — the slab/heap must stay free of
# cross-engine shared state.
./build-tsan/tests/test_sim_simulation
./build-tsan/tests/test_sim_links
# Fault layer: faulted campaigns shard across pool workers exactly like
# healthy ones, and the property harness hammers the per-worker engines.
./build-tsan/tests/test_campaign_faults
./build-tsan/tests/test_pfs_faults
./build-tsan/tests/test_sim_property
# Parallel event lanes: N engines on worker threads synchronized by
# barrier windows, cross-lane messages through per-(src,dst) outboxes —
# the whole lane data plane must be race-free under TSan while the tests
# assert bit-identity against the lanes=1 sequential reference.
./build-tsan/tests/test_sim_lanes
# Serving layer: the MPSC ring (multi-producer ticket CAS + per-cell seq)
# and the batcher/hot-swap path (producers spinning on completion flags
# while the batcher thread swaps models) are the two lock-free surfaces —
# both must stay race-free while the tests assert FIFO order,
# exactly-once consumption, and single-version batches.
./build-tsan/tests/test_serve_ring
./build-tsan/tests/test_serve_service
# Mitigation layer: each campaign worker runs its own Mitigator +
# controllers on a private engine; mitigated (and faulted+mitigated)
# campaigns must shard across the pool without sharing controller state,
# while the tests assert byte-identity across --jobs counts.
./build-tsan/tests/test_ctrl_bucket
./build-tsan/tests/test_ctrl_controller
./build-tsan/tests/test_campaign_mitigate

echo "=== tier-1: .qds/.qwp corruption fuzz under ASan ==="
# test_qds_fuzz covers the buffered reader, the mmap path (QdsMmapFuzz),
# the .qdm manifest/shard files (QdmFuzz), and the qlz codec (QlzFuzz);
# test_streaming exercises the mmap'ed shard lifecycle end to end.
# test_qwp flips/truncates every byte of a serialized workload program and
# test_replay parses crafted DXT dumps — the two text-IR parsers must turn
# hostile bytes into clean errors, never out-of-bounds reads.
cmake -B build-asan -S . -DQIF_SANITIZE=address
cmake --build build-asan -j --target test_qds_fuzz test_export test_streaming \
  test_qwp test_replay
./build-asan/tests/test_qds_fuzz
./build-asan/tests/test_export
./build-asan/tests/test_streaming
./build-asan/tests/test_qwp
./build-asan/tests/test_replay

echo "=== tier-1: benchmark smoke ==="
# Includes the lane smoke: `qif run --lanes 4` must print the same trace
# fingerprint as `--lanes 1` (the lane engine's bit-identity contract,
# asserted end to end through the CLI).
./scripts/bench_sim.sh --smoke
# Serving smoke: `qif serve verify` replays every batched reply against a
# single-row sync prediction and must report zero mismatches for both
# model architectures (the serving bit-identity contract, end to end).
./scripts/bench_serve.sh --smoke
# Mitigation smoke: the on-vs-off study on a contended campaign must show
# mitigation-on beating off on both mean degradation and victim p99 (the
# mitigation-wins gate, end to end through the CLI).
./scripts/bench_ctrl.sh --smoke

echo "tier-1 OK"
