// Measure the cross-interference between any two workloads from the CLI.
//
//   interference_matrix [target] [noise] [instances]
//   interference_matrix ior-easy-read mdt-hard-write 9
//
// Runs the target alone and under `instances` looping copies of the noise
// workload on separate nodes, then reports run-level slowdown and the
// per-op-type latency breakdown — a command-line version of the paper's
// Table I methodology for ad-hoc pairs.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "qif/core/report.hpp"
#include "qif/core/scenario.hpp"
#include "qif/sim/stats.hpp"
#include "qif/trace/matcher.hpp"
#include "qif/workloads/registry.hpp"

using namespace qif;

int main(int argc, char** argv) {
  const std::string target = argc > 1 ? argv[1] : "ior-easy-write";
  const std::string noise = argc > 2 ? argv[2] : "ior-easy-read";
  const int instances = argc > 3 ? std::atoi(argv[3]) : 9;
  if (!workloads::is_known_workload(target) || !workloads::is_known_workload(noise)) {
    std::printf("unknown workload; choose from:\n");
    for (const auto& w : workloads::known_workloads()) std::printf("  %s\n", w.c_str());
    return 1;
  }

  core::ScenarioConfig cfg;
  cfg.cluster = core::testbed_cluster_config(1);
  cfg.target.workload = target;
  cfg.target.nodes = {0, 1};
  cfg.target.procs_per_node = 2;
  cfg.target.seed = 1;
  cfg.monitors = false;

  std::printf("baseline %s ...\n", target.c_str());
  const auto solo = core::run_scenario(cfg);

  std::printf("with %d x %s ...\n", instances, noise.c_str());
  core::InterferenceSpec spec;
  spec.workload = noise;
  spec.nodes = {2, 3, 4, 5, 6};
  spec.instances = instances;
  spec.seed = 42;
  cfg.interference = spec;
  const auto mixed = core::run_scenario(cfg);

  std::printf("\ntimed phase: %.2f s -> %.2f s   slowdown %.2fx\n",
              sim::to_seconds(solo.target_body_duration()),
              sim::to_seconds(mixed.target_body_duration()),
              static_cast<double>(mixed.target_body_duration()) /
                  static_cast<double>(solo.target_body_duration()));

  // Per-op-type breakdown via matched traces.
  const auto matched = trace::TraceMatcher::match(solo.trace, mixed.trace, 0);
  std::map<pfs::OpType, std::pair<sim::RunningStats, sim::RunningStats>> by_type;
  for (const auto& m : matched) {
    auto& [base, noisy] = by_type[m.base.type];
    base.add(sim::to_millis(m.base.duration()));
    noisy.add(sim::to_millis(m.interference.duration()));
  }
  core::TextTable table;
  table.add_row({"op type", "count", "solo mean (ms)", "noisy mean (ms)", "slowdown"});
  for (const auto& [type, stats] : by_type) {
    const auto& [base, noisy] = stats;
    table.add_row({pfs::op_name(type), std::to_string(base.count()),
                   core::fmt(base.mean(), 3), core::fmt(noisy.mean(), 3),
                   core::fmt(base.mean() > 0 ? noisy.mean() / base.mean() : 0.0, 2) + "x"});
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}
