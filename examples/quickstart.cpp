// Quickstart: the whole framework in ~100 lines.
//
//  1. Simulate the paper's 11-machine Lustre testbed.
//  2. Run an IOR workload alone, then under background interference, and
//     print the measured slowdown.
//  3. Build a small labelled training campaign, train the kernel-based
//     network, and report its held-out confusion matrix.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "qif/core/campaign.hpp"
#include "qif/core/scenario.hpp"
#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"

using namespace qif;

int main() {
  // ---- 1. Solo vs. interfered run --------------------------------------
  core::ScenarioConfig solo;
  solo.cluster = core::testbed_cluster_config();
  solo.target.workload = "ior-easy-write";
  solo.target.nodes = {0, 1};
  solo.target.procs_per_node = 2;
  solo.target.seed = 1;
  solo.monitors = false;

  core::ScenarioConfig noisy = solo;
  core::InterferenceSpec spec;
  spec.workload = "ior-easy-read";
  spec.nodes = {2, 3, 4};
  spec.instances = 3;
  noisy.interference = spec;
  noisy.monitors = true;

  const core::ScenarioResult solo_run = core::run_scenario(solo);
  const core::ScenarioResult noisy_run = core::run_scenario(noisy);
  std::printf("ior-easy-write alone:              %.2f s (%llu events)\n",
              sim::to_seconds(solo_run.target_completion),
              static_cast<unsigned long long>(solo_run.events_executed));
  std::printf("ior-easy-write + ior-easy-read x3: %.2f s  -> slowdown %.2fx\n",
              sim::to_seconds(noisy_run.target_completion),
              static_cast<double>(noisy_run.target_completion) /
                  static_cast<double>(solo_run.target_completion));

  // ---- 2. A miniature training campaign --------------------------------
  core::CampaignConfig cc;
  cc.target_workload = "ior-easy-write";
  cc.target_scale = 4.0;
  cc.cluster = core::testbed_cluster_config();
  cc.bin_thresholds = {2.0};
  for (std::uint64_t s = 1; s <= 4; ++s) {
    cc.cases.push_back({"", 0, 1.0, s});                   // quiet cases
    cc.cases.push_back({"ior-easy-read", 9, 1.0, s});      // read contention
    cc.cases.push_back({"ior-hard-write", 9, 1.0, s + 100});
  }
  core::Campaign campaign(cc);
  monitor::Dataset ds = campaign.run();
  const auto hist = ds.class_histogram();
  std::printf("\ncampaign: %zu windows (", ds.size());
  for (std::size_t c = 0; c < hist.size(); ++c) {
    std::printf("%sclass %zu: %zu", c ? ", " : "", c, hist[c]);
  }
  std::printf(")\n");

  // ---- 3. Train and evaluate the kernel-based model --------------------
  auto [train, test] = ml::split_dataset(ds, 0.2, /*seed=*/5);
  core::TrainingServerConfig tsc;
  tsc.n_classes = 2;
  core::TrainingServer server(tsc);
  const ml::TrainResult tr = server.fit(train);
  const ml::ConfusionMatrix cm = server.evaluate(test);
  std::printf("\nbest epoch %d (val macro-F1 %.3f)\n", tr.best_epoch, tr.best_val_macro_f1);
  std::printf("%s", cm.to_string({"<2x", ">=2x"}).c_str());
  return 0;
}
