// Mitigation study: what the prediction is *for*.
//
// The paper's thesis is that a quantitative interference prediction enables
// targeted mitigation ("users can develop more effective methods to
// mitigate such impacts"), unlike today's uniform treatment.  This example
// measures that claim end to end on a checkpointing application under
// bursty background interference:
//
//   naive   — checkpoint every K compute steps, whatever the system state;
//   guarded — when a checkpoint is due and the deployed model predicts
//             >= 2x degradation, keep computing and re-check each window,
//             up to a bounded deferral.
//
// Both runs perform identical work (same steps, same checkpoints, same
// bytes); only the checkpoint *timing* differs.  Expected: the guard moves
// checkpoints out of interference bursts, cutting checkpoint stall time
// and total runtime.
#include <cstdio>
#include <functional>
#include <memory>

#include "qif/core/datasets.hpp"
#include "qif/core/online.hpp"
#include "qif/core/scenario.hpp"
#include "qif/core/training_server.hpp"
#include "qif/monitor/client_monitor.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/workloads/driver.hpp"

using namespace qif;

namespace {

struct RunStats {
  double completion_s = 0.0;
  double checkpoint_stall_s = 0.0;
  int deferral_windows = 0;
};

/// Runs the checkpointing app once.  `guard` (may be null) returns true
/// when a due checkpoint should be deferred one compute step.
RunStats run_app(const core::TrainingServer* model, bool guarded) {
  sim::Simulation simulation;
  pfs::ClusterConfig cc = core::testbed_cluster_config(123);
  pfs::Cluster cluster(simulation, cc);

  monitor::ClientMonitor cmon(0, sim::kSecond, cluster.n_servers(),
                              cluster.mdt_server_index());
  monitor::ServerMonitor smon(cluster, sim::kSecond);
  smon.start();
  cluster.trace_log().set_observer(
      [&cmon](const trace::OpRecord& r) { cmon.observe(r); });

  // Bursty interference: heavy write noise during [4, 14) s and [22, 32) s.
  auto burst1 = std::make_unique<workloads::InterferenceDriver>(
      cluster, "ior-easy-write", std::vector<pfs::NodeId>{2, 3, 4, 5, 6}, 12,
      14 * sim::kSecond, 31, 100);
  auto burst2 = std::make_unique<workloads::InterferenceDriver>(
      cluster, "ior-easy-write", std::vector<pfs::NodeId>{2, 3, 4, 5, 6}, 12,
      32 * sim::kSecond, 33, 200);
  simulation.schedule_at(4 * sim::kSecond, [&burst1] { burst1->start(); });
  simulation.schedule_at(22 * sim::kSecond, [&burst2] { burst2->start(); });

  // The deployed predictor tracks the latest closed window.
  int latest_prediction = 0;
  std::unique_ptr<core::OnlinePredictor> predictor;
  if (model != nullptr) {
    predictor = std::make_unique<core::OnlinePredictor>(
        cluster, *model, cmon, smon, [&](const core::Prediction& p) {
          latest_prediction = p.predicted_class;
        });
    predictor->start();
  }

  // The application: 60 compute steps of 500 ms; a 64 MiB checkpoint is
  // due every 10 steps (checkpoints beyond the last step flush at the end).
  pfs::PfsClient& client = cluster.make_client(0, 0, 0);
  RunStats stats;
  int step = 0;
  int checkpoints_written = 0;
  int defer_budget = 0;
  constexpr int kSteps = 60;
  constexpr int kCheckpointEvery = 10;
  constexpr int kMaxDefer = 12;  // compute steps a checkpoint may slip
  constexpr std::int64_t kCkptBytes = 64ll << 20;
  bool done = false;

  std::function<void()> next_action;
  auto write_checkpoint = [&](std::function<void()> then) {
    const std::string path = "/app/ckpt" + std::to_string(checkpoints_written);
    const sim::SimTime t0 = simulation.now();
    client.create(path, 0, [&, t0, then](pfs::FileHandle fh) {
      std::shared_ptr<std::function<void(std::int64_t)>> chunk_writer =
          std::make_shared<std::function<void(std::int64_t)>>();
      *chunk_writer = [&, fh, t0, then, chunk_writer](std::int64_t off) {
        if (off >= kCkptBytes) {
          client.close(fh, [&, t0, then] {
            stats.checkpoint_stall_s += sim::to_seconds(simulation.now() - t0);
            ++checkpoints_written;
            then();
          });
          return;
        }
        client.write(fh, off, 4 << 20,
                     [chunk_writer, off] { (*chunk_writer)(off + (4 << 20)); });
      };
      (*chunk_writer)(0);
    });
  };

  next_action = [&] {
    if (step >= kSteps) {
      // Flush any checkpoint still owed, then finish.
      if (checkpoints_written < kSteps / kCheckpointEvery) {
        write_checkpoint(next_action);
        return;
      }
      done = true;
      return;
    }
    const bool ckpt_due =
        step > 0 && step % kCheckpointEvery == 0 &&
        checkpoints_written < step / kCheckpointEvery;
    if (ckpt_due) {
      const bool defer = guarded && latest_prediction >= 1 && defer_budget < kMaxDefer;
      if (!defer) {
        defer_budget = 0;
        write_checkpoint(next_action);
        return;
      }
      ++defer_budget;
      ++stats.deferral_windows;
    }
    ++step;
    simulation.schedule_after(500 * sim::kMillisecond, next_action);
  };
  next_action();

  while (!done && simulation.now() < 300 * sim::kSecond) {
    simulation.run_until(simulation.now() + sim::kSecond);
  }
  if (predictor) predictor->stop();
  stats.completion_s = sim::to_seconds(simulation.now());
  return stats;
}

}  // namespace

int main() {
  std::printf("=== Mitigation study: prediction-guided checkpoint deferral ===\n\n");
  std::printf("training the guard model on an IO500 campaign...\n");
  core::DatasetOptions opts;
  opts.richness = 1.0;
  const monitor::Dataset ds = core::build_io500_dataset(opts);
  core::TrainingServerConfig tsc;
  tsc.n_classes = 2;
  core::TrainingServer model(tsc);
  model.fit(ds);
  std::printf("model ready (%zu windows)\n\n", ds.size());

  const RunStats naive = run_app(&model, /*guarded=*/false);
  const RunStats guarded = run_app(&model, /*guarded=*/true);

  std::printf("%-28s %14s %20s %12s\n", "policy", "completion (s)",
              "checkpoint stall (s)", "deferrals");
  std::printf("%-28s %14.2f %20.2f %12d\n", "naive (fixed cadence)", naive.completion_s,
              naive.checkpoint_stall_s, naive.deferral_windows);
  std::printf("%-28s %14.2f %20.2f %12d\n", "guarded (defer on >=2x)",
              guarded.completion_s, guarded.checkpoint_stall_s,
              guarded.deferral_windows);
  std::printf("\ncheckpoint stall reduced %.1fx; same work, same bytes — the "
              "checkpoints simply\nland outside the interference bursts the model "
              "detects.\n",
              naive.checkpoint_stall_s / std::max(guarded.checkpoint_stall_s, 1e-9));
  return 0;
}
