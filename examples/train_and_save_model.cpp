// Model lifecycle: collect -> train -> save -> reload -> serve.
//
//   train_and_save_model [model-path] [richness]
//
// Builds an IO500 training campaign, trains both the binary and the
// 3-class model, persists the binary bundle (network + standardizer) to a
// file, reloads it into a fresh TrainingServer and verifies the reloaded
// model reproduces the original predictions — the workflow a site would
// use to train once and deploy the model on its monitoring host.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "qif/core/datasets.hpp"
#include "qif/core/training_server.hpp"
#include "qif/ml/preprocess.hpp"

using namespace qif;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "qif_model.txt";
  const double richness = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("collecting IO500 campaign (richness %.1f)...\n", richness);
  core::DatasetOptions opts;
  opts.richness = richness;
  const monitor::Dataset ds = core::build_io500_dataset(opts);
  auto [train, test] = ml::split_dataset(ds, 0.2, 13);
  std::printf("%zu train / %zu test windows\n", train.size(), test.size());

  // Binary model.
  core::TrainingServerConfig cfg;
  cfg.n_classes = 2;
  core::TrainingServer server(cfg);
  server.fit(train);
  const auto cm = server.evaluate(test);
  std::printf("\nbinary model:  accuracy %.3f, positive F1 %.3f\n", cm.accuracy(),
              cm.binary_f1());

  // 3-class variant — "the amount of classification bins is configurable".
  core::DatasetOptions multi_opts = opts;
  multi_opts.bin_thresholds = {2.0, 5.0};
  const monitor::Dataset ds3 = core::build_io500_dataset(multi_opts);
  auto [train3, test3] = ml::split_dataset(ds3, 0.2, 13);
  core::TrainingServerConfig cfg3;
  cfg3.n_classes = 3;
  core::TrainingServer server3(cfg3);
  server3.fit(train3);
  std::printf("3-class model: accuracy %.3f\n", server3.evaluate(test3).accuracy());

  // Persist and reload the binary bundle.
  {
    std::ofstream out(path);
    server.save(out);
  }
  core::TrainingServer reloaded(core::TrainingServerConfig{});
  {
    std::ifstream in(path);
    reloaded.load(in);
  }
  std::size_t agree = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const std::vector<double> features = test.row_vector(i);
    if (reloaded.predict(features) == server.predict(features)) ++agree;
  }
  std::printf("\nsaved to %s; reloaded model agrees on %zu/%zu test windows\n", path,
              agree, test.size());
  return agree == test.size() ? 0 : 1;
}
