// Online deployment scenario: an "interference guard" for a running
// application.
//
// The paper's motivation: "users can develop more effective methods to
// mitigate such impacts" once interference is *quantified* at runtime.
// This example plays that story end to end:
//
//  1. train the binary model offline on an Enzo campaign,
//  2. deploy it next to a live Enzo run (the paper's Figure 2 runtime path:
//     client monitor + server monitors -> per-server vectors -> model),
//  3. at every 1 s window, print the predicted class, the model's
//     confidence, and which server the kernel blames — and demonstrate a
//     mitigation hook: defer Enzo's checkpoint phase while the model
//     predicts >= 2x degradation.
#include <cstdio>

#include "qif/core/datasets.hpp"
#include "qif/core/online.hpp"
#include "qif/core/scenario.hpp"
#include "qif/core/training_server.hpp"
#include "qif/monitor/client_monitor.hpp"
#include "qif/monitor/server_monitor.hpp"
#include "qif/workloads/driver.hpp"

using namespace qif;

int main() {
  // ---- 1. Offline training ---------------------------------------------
  std::printf("training the interference model on an Enzo campaign...\n");
  core::DatasetOptions opts;
  opts.richness = 1.0;
  const monitor::Dataset ds = core::build_app_dataset("enzo", opts);
  core::TrainingServerConfig tsc;
  tsc.n_classes = 2;
  core::TrainingServer server(tsc);
  const ml::TrainResult tr = server.fit(ds);
  std::printf("model ready: %zu training windows, val macro-F1 %.3f\n\n", ds.size(),
              tr.best_val_macro_f1);

  // ---- 2. Live deployment ----------------------------------------------
  sim::Simulation simulation;
  pfs::ClusterConfig cc = core::testbed_cluster_config(77);
  pfs::Cluster cluster(simulation, cc);

  monitor::ClientMonitor cmon(/*job=*/0, sim::kSecond, cluster.n_servers(),
                              cluster.mdt_server_index());
  monitor::ServerMonitor smon(cluster, sim::kSecond);
  smon.start();
  cluster.trace_log().set_observer(
      [&](const trace::OpRecord& r) { cmon.observe(r); });

  workloads::JobSpec enzo;
  enzo.workload = "enzo";
  enzo.nodes = {0, 1};
  enzo.procs_per_node = 2;
  enzo.seed = 7;
  enzo.scale = 4.0;
  workloads::JobInstance job(cluster, enzo, /*loop=*/false);

  // Background interference arrives mid-run (t = 6 s): a burst of
  // ior-easy-write instances on the other nodes.
  workloads::InterferenceDriver noise(cluster, "ior-easy-write", {2, 3, 4, 5, 6}, 12,
                                      40 * sim::kSecond, 91, /*job_base=*/1);
  simulation.schedule_at(6 * sim::kSecond, [&noise] { noise.start(); });

  // ---- 3. Window-by-window predictions ----------------------------------
  int deferred_windows = 0;
  core::OnlinePredictor predictor(
      cluster, server, cmon, smon, [&](const core::Prediction& p) {
        if (!p.had_activity) return;
        int blamed = 0;
        for (std::size_t srv = 1; srv < p.server_scores.size(); ++srv) {
          if (p.server_scores[srv] > p.server_scores[static_cast<std::size_t>(blamed)]) {
            blamed = static_cast<int>(srv);
          }
        }
        const bool severe = p.predicted_class >= 1;
        if (severe) ++deferred_windows;
        std::printf("window %3lld | predicted %-5s p(>=2x)=%.2f | hottest server: %s |"
                    " checkpoint: %s\n",
                    static_cast<long long>(p.window_index), severe ? ">=2x" : "<2x",
                    p.probabilities.back(),
                    blamed == cluster.mdt_server_index()
                        ? "mdt"
                        : ("ost" + std::to_string(blamed)).c_str(),
                    severe ? "DEFER" : "proceed");
      });
  predictor.start();

  bool done = false;
  job.start([&] { done = true; });
  while (!done && simulation.now() < 120 * sim::kSecond) {
    simulation.run_until(simulation.now() + sim::kSecond);
  }
  predictor.stop();
  std::printf("\nEnzo finished at %.1f s; the guard would have deferred checkpoints in"
              " %d windows.\n",
              sim::to_seconds(simulation.now()), deferred_windows);
  std::printf("(interference started at t = 6 s — predictions should flip around"
              " there)\n");
  return 0;
}
