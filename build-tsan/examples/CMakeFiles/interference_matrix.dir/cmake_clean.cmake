file(REMOVE_RECURSE
  "CMakeFiles/interference_matrix.dir/interference_matrix.cpp.o"
  "CMakeFiles/interference_matrix.dir/interference_matrix.cpp.o.d"
  "interference_matrix"
  "interference_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
