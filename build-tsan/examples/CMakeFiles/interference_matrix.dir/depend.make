# Empty dependencies file for interference_matrix.
# This may be replaced when dependencies are built.
