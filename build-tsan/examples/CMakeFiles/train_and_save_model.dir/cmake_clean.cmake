file(REMOVE_RECURSE
  "CMakeFiles/train_and_save_model.dir/train_and_save_model.cpp.o"
  "CMakeFiles/train_and_save_model.dir/train_and_save_model.cpp.o.d"
  "train_and_save_model"
  "train_and_save_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_save_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
