# Empty compiler generated dependencies file for train_and_save_model.
# This may be replaced when dependencies are built.
