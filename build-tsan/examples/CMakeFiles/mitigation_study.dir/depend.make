# Empty dependencies file for mitigation_study.
# This may be replaced when dependencies are built.
