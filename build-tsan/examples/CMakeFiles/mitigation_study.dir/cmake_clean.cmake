file(REMOVE_RECURSE
  "CMakeFiles/mitigation_study.dir/mitigation_study.cpp.o"
  "CMakeFiles/mitigation_study.dir/mitigation_study.cpp.o.d"
  "mitigation_study"
  "mitigation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
