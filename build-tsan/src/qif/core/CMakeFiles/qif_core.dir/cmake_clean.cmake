file(REMOVE_RECURSE
  "CMakeFiles/qif_core.dir/campaign.cpp.o"
  "CMakeFiles/qif_core.dir/campaign.cpp.o.d"
  "CMakeFiles/qif_core.dir/datasets.cpp.o"
  "CMakeFiles/qif_core.dir/datasets.cpp.o.d"
  "CMakeFiles/qif_core.dir/online.cpp.o"
  "CMakeFiles/qif_core.dir/online.cpp.o.d"
  "CMakeFiles/qif_core.dir/report.cpp.o"
  "CMakeFiles/qif_core.dir/report.cpp.o.d"
  "CMakeFiles/qif_core.dir/scenario.cpp.o"
  "CMakeFiles/qif_core.dir/scenario.cpp.o.d"
  "CMakeFiles/qif_core.dir/training_server.cpp.o"
  "CMakeFiles/qif_core.dir/training_server.cpp.o.d"
  "libqif_core.a"
  "libqif_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
