file(REMOVE_RECURSE
  "libqif_core.a"
)
