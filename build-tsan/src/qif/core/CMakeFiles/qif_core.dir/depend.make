# Empty dependencies file for qif_core.
# This may be replaced when dependencies are built.
