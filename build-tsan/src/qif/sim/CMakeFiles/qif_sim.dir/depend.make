# Empty dependencies file for qif_sim.
# This may be replaced when dependencies are built.
