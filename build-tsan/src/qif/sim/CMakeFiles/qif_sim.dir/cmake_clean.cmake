file(REMOVE_RECURSE
  "CMakeFiles/qif_sim.dir/fair_link.cpp.o"
  "CMakeFiles/qif_sim.dir/fair_link.cpp.o.d"
  "CMakeFiles/qif_sim.dir/pipe.cpp.o"
  "CMakeFiles/qif_sim.dir/pipe.cpp.o.d"
  "CMakeFiles/qif_sim.dir/rng.cpp.o"
  "CMakeFiles/qif_sim.dir/rng.cpp.o.d"
  "CMakeFiles/qif_sim.dir/simulation.cpp.o"
  "CMakeFiles/qif_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/qif_sim.dir/stats.cpp.o"
  "CMakeFiles/qif_sim.dir/stats.cpp.o.d"
  "libqif_sim.a"
  "libqif_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
