file(REMOVE_RECURSE
  "libqif_sim.a"
)
