
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qif/sim/fair_link.cpp" "src/qif/sim/CMakeFiles/qif_sim.dir/fair_link.cpp.o" "gcc" "src/qif/sim/CMakeFiles/qif_sim.dir/fair_link.cpp.o.d"
  "/root/repo/src/qif/sim/pipe.cpp" "src/qif/sim/CMakeFiles/qif_sim.dir/pipe.cpp.o" "gcc" "src/qif/sim/CMakeFiles/qif_sim.dir/pipe.cpp.o.d"
  "/root/repo/src/qif/sim/rng.cpp" "src/qif/sim/CMakeFiles/qif_sim.dir/rng.cpp.o" "gcc" "src/qif/sim/CMakeFiles/qif_sim.dir/rng.cpp.o.d"
  "/root/repo/src/qif/sim/simulation.cpp" "src/qif/sim/CMakeFiles/qif_sim.dir/simulation.cpp.o" "gcc" "src/qif/sim/CMakeFiles/qif_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/qif/sim/stats.cpp" "src/qif/sim/CMakeFiles/qif_sim.dir/stats.cpp.o" "gcc" "src/qif/sim/CMakeFiles/qif_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
