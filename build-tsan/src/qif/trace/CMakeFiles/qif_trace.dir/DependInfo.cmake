
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qif/trace/labeler.cpp" "src/qif/trace/CMakeFiles/qif_trace.dir/labeler.cpp.o" "gcc" "src/qif/trace/CMakeFiles/qif_trace.dir/labeler.cpp.o.d"
  "/root/repo/src/qif/trace/matcher.cpp" "src/qif/trace/CMakeFiles/qif_trace.dir/matcher.cpp.o" "gcc" "src/qif/trace/CMakeFiles/qif_trace.dir/matcher.cpp.o.d"
  "/root/repo/src/qif/trace/op_record.cpp" "src/qif/trace/CMakeFiles/qif_trace.dir/op_record.cpp.o" "gcc" "src/qif/trace/CMakeFiles/qif_trace.dir/op_record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/qif/sim/CMakeFiles/qif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
