file(REMOVE_RECURSE
  "CMakeFiles/qif_trace.dir/labeler.cpp.o"
  "CMakeFiles/qif_trace.dir/labeler.cpp.o.d"
  "CMakeFiles/qif_trace.dir/matcher.cpp.o"
  "CMakeFiles/qif_trace.dir/matcher.cpp.o.d"
  "CMakeFiles/qif_trace.dir/op_record.cpp.o"
  "CMakeFiles/qif_trace.dir/op_record.cpp.o.d"
  "libqif_trace.a"
  "libqif_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
