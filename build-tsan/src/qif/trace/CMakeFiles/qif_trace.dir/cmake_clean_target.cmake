file(REMOVE_RECURSE
  "libqif_trace.a"
)
