# Empty dependencies file for qif_trace.
# This may be replaced when dependencies are built.
