file(REMOVE_RECURSE
  "libqif_exec.a"
)
