# Empty dependencies file for qif_exec.
# This may be replaced when dependencies are built.
