file(REMOVE_RECURSE
  "CMakeFiles/qif_exec.dir/parallel_runner.cpp.o"
  "CMakeFiles/qif_exec.dir/parallel_runner.cpp.o.d"
  "CMakeFiles/qif_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/qif_exec.dir/thread_pool.cpp.o.d"
  "libqif_exec.a"
  "libqif_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
