# Empty dependencies file for qif_ml.
# This may be replaced when dependencies are built.
