file(REMOVE_RECURSE
  "CMakeFiles/qif_ml.dir/attention_net.cpp.o"
  "CMakeFiles/qif_ml.dir/attention_net.cpp.o.d"
  "CMakeFiles/qif_ml.dir/kernel_net.cpp.o"
  "CMakeFiles/qif_ml.dir/kernel_net.cpp.o.d"
  "CMakeFiles/qif_ml.dir/matrix.cpp.o"
  "CMakeFiles/qif_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/qif_ml.dir/metrics.cpp.o"
  "CMakeFiles/qif_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/qif_ml.dir/nn.cpp.o"
  "CMakeFiles/qif_ml.dir/nn.cpp.o.d"
  "CMakeFiles/qif_ml.dir/preprocess.cpp.o"
  "CMakeFiles/qif_ml.dir/preprocess.cpp.o.d"
  "CMakeFiles/qif_ml.dir/trainer.cpp.o"
  "CMakeFiles/qif_ml.dir/trainer.cpp.o.d"
  "libqif_ml.a"
  "libqif_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
