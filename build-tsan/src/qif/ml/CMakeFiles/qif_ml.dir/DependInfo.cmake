
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qif/ml/attention_net.cpp" "src/qif/ml/CMakeFiles/qif_ml.dir/attention_net.cpp.o" "gcc" "src/qif/ml/CMakeFiles/qif_ml.dir/attention_net.cpp.o.d"
  "/root/repo/src/qif/ml/kernel_net.cpp" "src/qif/ml/CMakeFiles/qif_ml.dir/kernel_net.cpp.o" "gcc" "src/qif/ml/CMakeFiles/qif_ml.dir/kernel_net.cpp.o.d"
  "/root/repo/src/qif/ml/matrix.cpp" "src/qif/ml/CMakeFiles/qif_ml.dir/matrix.cpp.o" "gcc" "src/qif/ml/CMakeFiles/qif_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/qif/ml/metrics.cpp" "src/qif/ml/CMakeFiles/qif_ml.dir/metrics.cpp.o" "gcc" "src/qif/ml/CMakeFiles/qif_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/qif/ml/nn.cpp" "src/qif/ml/CMakeFiles/qif_ml.dir/nn.cpp.o" "gcc" "src/qif/ml/CMakeFiles/qif_ml.dir/nn.cpp.o.d"
  "/root/repo/src/qif/ml/preprocess.cpp" "src/qif/ml/CMakeFiles/qif_ml.dir/preprocess.cpp.o" "gcc" "src/qif/ml/CMakeFiles/qif_ml.dir/preprocess.cpp.o.d"
  "/root/repo/src/qif/ml/trainer.cpp" "src/qif/ml/CMakeFiles/qif_ml.dir/trainer.cpp.o" "gcc" "src/qif/ml/CMakeFiles/qif_ml.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/qif/sim/CMakeFiles/qif_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/monitor/CMakeFiles/qif_monitor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/pfs/CMakeFiles/qif_pfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/trace/CMakeFiles/qif_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
