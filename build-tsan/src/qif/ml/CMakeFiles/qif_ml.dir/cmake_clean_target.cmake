file(REMOVE_RECURSE
  "libqif_ml.a"
)
