file(REMOVE_RECURSE
  "libqif_pfs.a"
)
