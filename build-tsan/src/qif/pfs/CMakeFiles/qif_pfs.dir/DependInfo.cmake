
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qif/pfs/client.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/client.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/client.cpp.o.d"
  "/root/repo/src/qif/pfs/cluster.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/cluster.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/cluster.cpp.o.d"
  "/root/repo/src/qif/pfs/disk.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/disk.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/disk.cpp.o.d"
  "/root/repo/src/qif/pfs/layout.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/layout.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/layout.cpp.o.d"
  "/root/repo/src/qif/pfs/mdt.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/mdt.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/mdt.cpp.o.d"
  "/root/repo/src/qif/pfs/network.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/network.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/network.cpp.o.d"
  "/root/repo/src/qif/pfs/read_cache.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/read_cache.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/read_cache.cpp.o.d"
  "/root/repo/src/qif/pfs/types.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/types.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/types.cpp.o.d"
  "/root/repo/src/qif/pfs/writeback.cpp" "src/qif/pfs/CMakeFiles/qif_pfs.dir/writeback.cpp.o" "gcc" "src/qif/pfs/CMakeFiles/qif_pfs.dir/writeback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/qif/sim/CMakeFiles/qif_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/trace/CMakeFiles/qif_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
