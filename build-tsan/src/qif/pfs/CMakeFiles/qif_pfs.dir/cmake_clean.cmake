file(REMOVE_RECURSE
  "CMakeFiles/qif_pfs.dir/client.cpp.o"
  "CMakeFiles/qif_pfs.dir/client.cpp.o.d"
  "CMakeFiles/qif_pfs.dir/cluster.cpp.o"
  "CMakeFiles/qif_pfs.dir/cluster.cpp.o.d"
  "CMakeFiles/qif_pfs.dir/disk.cpp.o"
  "CMakeFiles/qif_pfs.dir/disk.cpp.o.d"
  "CMakeFiles/qif_pfs.dir/layout.cpp.o"
  "CMakeFiles/qif_pfs.dir/layout.cpp.o.d"
  "CMakeFiles/qif_pfs.dir/mdt.cpp.o"
  "CMakeFiles/qif_pfs.dir/mdt.cpp.o.d"
  "CMakeFiles/qif_pfs.dir/network.cpp.o"
  "CMakeFiles/qif_pfs.dir/network.cpp.o.d"
  "CMakeFiles/qif_pfs.dir/read_cache.cpp.o"
  "CMakeFiles/qif_pfs.dir/read_cache.cpp.o.d"
  "CMakeFiles/qif_pfs.dir/types.cpp.o"
  "CMakeFiles/qif_pfs.dir/types.cpp.o.d"
  "CMakeFiles/qif_pfs.dir/writeback.cpp.o"
  "CMakeFiles/qif_pfs.dir/writeback.cpp.o.d"
  "libqif_pfs.a"
  "libqif_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
