# Empty dependencies file for qif_pfs.
# This may be replaced when dependencies are built.
