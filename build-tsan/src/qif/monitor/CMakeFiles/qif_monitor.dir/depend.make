# Empty dependencies file for qif_monitor.
# This may be replaced when dependencies are built.
