file(REMOVE_RECURSE
  "CMakeFiles/qif_monitor.dir/client_monitor.cpp.o"
  "CMakeFiles/qif_monitor.dir/client_monitor.cpp.o.d"
  "CMakeFiles/qif_monitor.dir/export.cpp.o"
  "CMakeFiles/qif_monitor.dir/export.cpp.o.d"
  "CMakeFiles/qif_monitor.dir/features.cpp.o"
  "CMakeFiles/qif_monitor.dir/features.cpp.o.d"
  "CMakeFiles/qif_monitor.dir/schema.cpp.o"
  "CMakeFiles/qif_monitor.dir/schema.cpp.o.d"
  "CMakeFiles/qif_monitor.dir/server_monitor.cpp.o"
  "CMakeFiles/qif_monitor.dir/server_monitor.cpp.o.d"
  "libqif_monitor.a"
  "libqif_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
