
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qif/monitor/client_monitor.cpp" "src/qif/monitor/CMakeFiles/qif_monitor.dir/client_monitor.cpp.o" "gcc" "src/qif/monitor/CMakeFiles/qif_monitor.dir/client_monitor.cpp.o.d"
  "/root/repo/src/qif/monitor/export.cpp" "src/qif/monitor/CMakeFiles/qif_monitor.dir/export.cpp.o" "gcc" "src/qif/monitor/CMakeFiles/qif_monitor.dir/export.cpp.o.d"
  "/root/repo/src/qif/monitor/features.cpp" "src/qif/monitor/CMakeFiles/qif_monitor.dir/features.cpp.o" "gcc" "src/qif/monitor/CMakeFiles/qif_monitor.dir/features.cpp.o.d"
  "/root/repo/src/qif/monitor/schema.cpp" "src/qif/monitor/CMakeFiles/qif_monitor.dir/schema.cpp.o" "gcc" "src/qif/monitor/CMakeFiles/qif_monitor.dir/schema.cpp.o.d"
  "/root/repo/src/qif/monitor/server_monitor.cpp" "src/qif/monitor/CMakeFiles/qif_monitor.dir/server_monitor.cpp.o" "gcc" "src/qif/monitor/CMakeFiles/qif_monitor.dir/server_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/qif/pfs/CMakeFiles/qif_pfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/trace/CMakeFiles/qif_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/sim/CMakeFiles/qif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
