file(REMOVE_RECURSE
  "libqif_monitor.a"
)
