# Empty dependencies file for qif_workloads.
# This may be replaced when dependencies are built.
