file(REMOVE_RECURSE
  "libqif_workloads.a"
)
