
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qif/workloads/dlio.cpp" "src/qif/workloads/CMakeFiles/qif_workloads.dir/dlio.cpp.o" "gcc" "src/qif/workloads/CMakeFiles/qif_workloads.dir/dlio.cpp.o.d"
  "/root/repo/src/qif/workloads/driver.cpp" "src/qif/workloads/CMakeFiles/qif_workloads.dir/driver.cpp.o" "gcc" "src/qif/workloads/CMakeFiles/qif_workloads.dir/driver.cpp.o.d"
  "/root/repo/src/qif/workloads/ior.cpp" "src/qif/workloads/CMakeFiles/qif_workloads.dir/ior.cpp.o" "gcc" "src/qif/workloads/CMakeFiles/qif_workloads.dir/ior.cpp.o.d"
  "/root/repo/src/qif/workloads/mdtest.cpp" "src/qif/workloads/CMakeFiles/qif_workloads.dir/mdtest.cpp.o" "gcc" "src/qif/workloads/CMakeFiles/qif_workloads.dir/mdtest.cpp.o.d"
  "/root/repo/src/qif/workloads/program.cpp" "src/qif/workloads/CMakeFiles/qif_workloads.dir/program.cpp.o" "gcc" "src/qif/workloads/CMakeFiles/qif_workloads.dir/program.cpp.o.d"
  "/root/repo/src/qif/workloads/proxies.cpp" "src/qif/workloads/CMakeFiles/qif_workloads.dir/proxies.cpp.o" "gcc" "src/qif/workloads/CMakeFiles/qif_workloads.dir/proxies.cpp.o.d"
  "/root/repo/src/qif/workloads/registry.cpp" "src/qif/workloads/CMakeFiles/qif_workloads.dir/registry.cpp.o" "gcc" "src/qif/workloads/CMakeFiles/qif_workloads.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/qif/pfs/CMakeFiles/qif_pfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/trace/CMakeFiles/qif_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/sim/CMakeFiles/qif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
