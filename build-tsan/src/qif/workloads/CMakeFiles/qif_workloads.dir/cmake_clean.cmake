file(REMOVE_RECURSE
  "CMakeFiles/qif_workloads.dir/dlio.cpp.o"
  "CMakeFiles/qif_workloads.dir/dlio.cpp.o.d"
  "CMakeFiles/qif_workloads.dir/driver.cpp.o"
  "CMakeFiles/qif_workloads.dir/driver.cpp.o.d"
  "CMakeFiles/qif_workloads.dir/ior.cpp.o"
  "CMakeFiles/qif_workloads.dir/ior.cpp.o.d"
  "CMakeFiles/qif_workloads.dir/mdtest.cpp.o"
  "CMakeFiles/qif_workloads.dir/mdtest.cpp.o.d"
  "CMakeFiles/qif_workloads.dir/program.cpp.o"
  "CMakeFiles/qif_workloads.dir/program.cpp.o.d"
  "CMakeFiles/qif_workloads.dir/proxies.cpp.o"
  "CMakeFiles/qif_workloads.dir/proxies.cpp.o.d"
  "CMakeFiles/qif_workloads.dir/registry.cpp.o"
  "CMakeFiles/qif_workloads.dir/registry.cpp.o.d"
  "libqif_workloads.a"
  "libqif_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
