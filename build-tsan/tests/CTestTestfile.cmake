# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_sim_simulation[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim_rng[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim_links[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pfs_disk[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pfs_writeback[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pfs_layout[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pfs_mdt[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pfs_client[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_trace[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_monitor[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ml_matrix[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ml_nn[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ml_kernelnet[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ml_trainer[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workloads[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ml_attention[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_export[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pfs_network[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core_datasets[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pfs_read_cache[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workload_scenarios[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_exec[1]_include.cmake")
add_test([=[cli_workloads]=] "/root/repo/build-tsan/tools/qif" "workloads")
set_tests_properties([=[cli_workloads]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[cli_roundtrip]=] "/usr/bin/cmake" "-DQIF_CLI=/root/repo/build-tsan/tools/qif" "-DWORK_DIR=/root/repo/build-tsan/tests/cli_roundtrip" "-P" "/root/repo/tests/cli_roundtrip.cmake")
set_tests_properties([=[cli_roundtrip]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;35;add_test;/root/repo/tests/CMakeLists.txt;0;")
