file(REMOVE_RECURSE
  "CMakeFiles/test_ml_matrix.dir/test_ml_matrix.cpp.o"
  "CMakeFiles/test_ml_matrix.dir/test_ml_matrix.cpp.o.d"
  "test_ml_matrix"
  "test_ml_matrix.pdb"
  "test_ml_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
