# Empty compiler generated dependencies file for test_ml_matrix.
# This may be replaced when dependencies are built.
