file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_network.dir/test_pfs_network.cpp.o"
  "CMakeFiles/test_pfs_network.dir/test_pfs_network.cpp.o.d"
  "test_pfs_network"
  "test_pfs_network.pdb"
  "test_pfs_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
