# Empty dependencies file for test_pfs_disk.
# This may be replaced when dependencies are built.
