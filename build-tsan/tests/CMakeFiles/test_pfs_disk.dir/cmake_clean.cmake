file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_disk.dir/test_pfs_disk.cpp.o"
  "CMakeFiles/test_pfs_disk.dir/test_pfs_disk.cpp.o.d"
  "test_pfs_disk"
  "test_pfs_disk.pdb"
  "test_pfs_disk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
