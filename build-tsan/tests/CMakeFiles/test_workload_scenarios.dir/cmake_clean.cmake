file(REMOVE_RECURSE
  "CMakeFiles/test_workload_scenarios.dir/test_workload_scenarios.cpp.o"
  "CMakeFiles/test_workload_scenarios.dir/test_workload_scenarios.cpp.o.d"
  "test_workload_scenarios"
  "test_workload_scenarios.pdb"
  "test_workload_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
