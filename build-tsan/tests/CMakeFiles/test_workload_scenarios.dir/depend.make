# Empty dependencies file for test_workload_scenarios.
# This may be replaced when dependencies are built.
