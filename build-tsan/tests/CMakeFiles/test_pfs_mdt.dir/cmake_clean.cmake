file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_mdt.dir/test_pfs_mdt.cpp.o"
  "CMakeFiles/test_pfs_mdt.dir/test_pfs_mdt.cpp.o.d"
  "test_pfs_mdt"
  "test_pfs_mdt.pdb"
  "test_pfs_mdt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_mdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
