# Empty dependencies file for test_pfs_mdt.
# This may be replaced when dependencies are built.
