# Empty dependencies file for test_pfs_read_cache.
# This may be replaced when dependencies are built.
