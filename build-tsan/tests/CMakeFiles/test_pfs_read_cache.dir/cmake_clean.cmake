file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_read_cache.dir/test_pfs_read_cache.cpp.o"
  "CMakeFiles/test_pfs_read_cache.dir/test_pfs_read_cache.cpp.o.d"
  "test_pfs_read_cache"
  "test_pfs_read_cache.pdb"
  "test_pfs_read_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_read_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
