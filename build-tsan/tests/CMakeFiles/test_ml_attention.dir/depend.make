# Empty dependencies file for test_ml_attention.
# This may be replaced when dependencies are built.
