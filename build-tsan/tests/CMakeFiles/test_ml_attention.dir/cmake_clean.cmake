file(REMOVE_RECURSE
  "CMakeFiles/test_ml_attention.dir/test_ml_attention.cpp.o"
  "CMakeFiles/test_ml_attention.dir/test_ml_attention.cpp.o.d"
  "test_ml_attention"
  "test_ml_attention.pdb"
  "test_ml_attention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
