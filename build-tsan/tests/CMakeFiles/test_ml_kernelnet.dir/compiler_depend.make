# Empty compiler generated dependencies file for test_ml_kernelnet.
# This may be replaced when dependencies are built.
