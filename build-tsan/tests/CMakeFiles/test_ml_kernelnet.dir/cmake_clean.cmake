file(REMOVE_RECURSE
  "CMakeFiles/test_ml_kernelnet.dir/test_ml_kernelnet.cpp.o"
  "CMakeFiles/test_ml_kernelnet.dir/test_ml_kernelnet.cpp.o.d"
  "test_ml_kernelnet"
  "test_ml_kernelnet.pdb"
  "test_ml_kernelnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_kernelnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
