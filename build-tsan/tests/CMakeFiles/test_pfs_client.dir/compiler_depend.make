# Empty compiler generated dependencies file for test_pfs_client.
# This may be replaced when dependencies are built.
