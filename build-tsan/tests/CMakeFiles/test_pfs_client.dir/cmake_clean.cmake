file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_client.dir/test_pfs_client.cpp.o"
  "CMakeFiles/test_pfs_client.dir/test_pfs_client.cpp.o.d"
  "test_pfs_client"
  "test_pfs_client.pdb"
  "test_pfs_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
