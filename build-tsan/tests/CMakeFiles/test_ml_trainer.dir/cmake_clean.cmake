file(REMOVE_RECURSE
  "CMakeFiles/test_ml_trainer.dir/test_ml_trainer.cpp.o"
  "CMakeFiles/test_ml_trainer.dir/test_ml_trainer.cpp.o.d"
  "test_ml_trainer"
  "test_ml_trainer.pdb"
  "test_ml_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
