# Empty dependencies file for test_ml_trainer.
# This may be replaced when dependencies are built.
