file(REMOVE_RECURSE
  "CMakeFiles/test_sim_links.dir/test_sim_links.cpp.o"
  "CMakeFiles/test_sim_links.dir/test_sim_links.cpp.o.d"
  "test_sim_links"
  "test_sim_links.pdb"
  "test_sim_links[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
