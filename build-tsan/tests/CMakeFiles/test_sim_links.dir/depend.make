# Empty dependencies file for test_sim_links.
# This may be replaced when dependencies are built.
