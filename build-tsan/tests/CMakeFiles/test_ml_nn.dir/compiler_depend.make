# Empty compiler generated dependencies file for test_ml_nn.
# This may be replaced when dependencies are built.
