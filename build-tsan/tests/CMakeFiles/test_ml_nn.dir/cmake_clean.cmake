file(REMOVE_RECURSE
  "CMakeFiles/test_ml_nn.dir/test_ml_nn.cpp.o"
  "CMakeFiles/test_ml_nn.dir/test_ml_nn.cpp.o.d"
  "test_ml_nn"
  "test_ml_nn.pdb"
  "test_ml_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
