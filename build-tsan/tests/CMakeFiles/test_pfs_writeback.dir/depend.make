# Empty dependencies file for test_pfs_writeback.
# This may be replaced when dependencies are built.
