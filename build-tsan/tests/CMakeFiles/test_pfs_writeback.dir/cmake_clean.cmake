file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_writeback.dir/test_pfs_writeback.cpp.o"
  "CMakeFiles/test_pfs_writeback.dir/test_pfs_writeback.cpp.o.d"
  "test_pfs_writeback"
  "test_pfs_writeback.pdb"
  "test_pfs_writeback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
