file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_layout.dir/test_pfs_layout.cpp.o"
  "CMakeFiles/test_pfs_layout.dir/test_pfs_layout.cpp.o.d"
  "test_pfs_layout"
  "test_pfs_layout.pdb"
  "test_pfs_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
