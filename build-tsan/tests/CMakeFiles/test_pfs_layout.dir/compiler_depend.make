# Empty compiler generated dependencies file for test_pfs_layout.
# This may be replaced when dependencies are built.
