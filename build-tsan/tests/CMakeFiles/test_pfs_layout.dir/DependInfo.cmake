
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_pfs_layout.cpp" "tests/CMakeFiles/test_pfs_layout.dir/test_pfs_layout.cpp.o" "gcc" "tests/CMakeFiles/test_pfs_layout.dir/test_pfs_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/qif/core/CMakeFiles/qif_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/exec/CMakeFiles/qif_exec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/workloads/CMakeFiles/qif_workloads.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/ml/CMakeFiles/qif_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/monitor/CMakeFiles/qif_monitor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/pfs/CMakeFiles/qif_pfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/trace/CMakeFiles/qif_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qif/sim/CMakeFiles/qif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
