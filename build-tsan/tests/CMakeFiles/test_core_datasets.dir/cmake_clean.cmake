file(REMOVE_RECURSE
  "CMakeFiles/test_core_datasets.dir/test_core_datasets.cpp.o"
  "CMakeFiles/test_core_datasets.dir/test_core_datasets.cpp.o.d"
  "test_core_datasets"
  "test_core_datasets.pdb"
  "test_core_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
