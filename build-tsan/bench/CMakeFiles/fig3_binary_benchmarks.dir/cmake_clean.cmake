file(REMOVE_RECURSE
  "CMakeFiles/fig3_binary_benchmarks.dir/fig3_binary_benchmarks.cpp.o"
  "CMakeFiles/fig3_binary_benchmarks.dir/fig3_binary_benchmarks.cpp.o.d"
  "fig3_binary_benchmarks"
  "fig3_binary_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_binary_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
