# Empty compiler generated dependencies file for fig3_binary_benchmarks.
# This may be replaced when dependencies are built.
