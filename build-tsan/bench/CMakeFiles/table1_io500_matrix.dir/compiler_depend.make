# Empty compiler generated dependencies file for table1_io500_matrix.
# This may be replaced when dependencies are built.
