file(REMOVE_RECURSE
  "CMakeFiles/table1_io500_matrix.dir/table1_io500_matrix.cpp.o"
  "CMakeFiles/table1_io500_matrix.dir/table1_io500_matrix.cpp.o.d"
  "table1_io500_matrix"
  "table1_io500_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_io500_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
