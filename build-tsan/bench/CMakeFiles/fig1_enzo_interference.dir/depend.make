# Empty dependencies file for fig1_enzo_interference.
# This may be replaced when dependencies are built.
