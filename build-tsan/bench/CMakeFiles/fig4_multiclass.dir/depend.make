# Empty dependencies file for fig4_multiclass.
# This may be replaced when dependencies are built.
