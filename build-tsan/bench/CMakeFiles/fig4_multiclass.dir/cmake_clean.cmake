file(REMOVE_RECURSE
  "CMakeFiles/fig4_multiclass.dir/fig4_multiclass.cpp.o"
  "CMakeFiles/fig4_multiclass.dir/fig4_multiclass.cpp.o.d"
  "fig4_multiclass"
  "fig4_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
