file(REMOVE_RECURSE
  "CMakeFiles/table2_server_metrics.dir/table2_server_metrics.cpp.o"
  "CMakeFiles/table2_server_metrics.dir/table2_server_metrics.cpp.o.d"
  "table2_server_metrics"
  "table2_server_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_server_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
