# Empty compiler generated dependencies file for table2_server_metrics.
# This may be replaced when dependencies are built.
