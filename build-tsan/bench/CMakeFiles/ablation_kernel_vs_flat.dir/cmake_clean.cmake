file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernel_vs_flat.dir/ablation_kernel_vs_flat.cpp.o"
  "CMakeFiles/ablation_kernel_vs_flat.dir/ablation_kernel_vs_flat.cpp.o.d"
  "ablation_kernel_vs_flat"
  "ablation_kernel_vs_flat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_vs_flat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
