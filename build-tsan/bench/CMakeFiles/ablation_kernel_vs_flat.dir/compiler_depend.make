# Empty compiler generated dependencies file for ablation_kernel_vs_flat.
# This may be replaced when dependencies are built.
