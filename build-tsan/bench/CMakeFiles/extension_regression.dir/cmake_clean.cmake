file(REMOVE_RECURSE
  "CMakeFiles/extension_regression.dir/extension_regression.cpp.o"
  "CMakeFiles/extension_regression.dir/extension_regression.cpp.o.d"
  "extension_regression"
  "extension_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
