# Empty compiler generated dependencies file for extension_regression.
# This may be replaced when dependencies are built.
