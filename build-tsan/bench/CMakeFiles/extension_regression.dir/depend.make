# Empty dependencies file for extension_regression.
# This may be replaced when dependencies are built.
