file(REMOVE_RECURSE
  "CMakeFiles/fig5_real_apps.dir/fig5_real_apps.cpp.o"
  "CMakeFiles/fig5_real_apps.dir/fig5_real_apps.cpp.o.d"
  "fig5_real_apps"
  "fig5_real_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_real_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
