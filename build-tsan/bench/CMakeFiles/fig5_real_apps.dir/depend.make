# Empty dependencies file for fig5_real_apps.
# This may be replaced when dependencies are built.
