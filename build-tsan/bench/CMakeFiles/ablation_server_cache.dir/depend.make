# Empty dependencies file for ablation_server_cache.
# This may be replaced when dependencies are built.
