file(REMOVE_RECURSE
  "CMakeFiles/ablation_server_cache.dir/ablation_server_cache.cpp.o"
  "CMakeFiles/ablation_server_cache.dir/ablation_server_cache.cpp.o.d"
  "ablation_server_cache"
  "ablation_server_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_server_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
