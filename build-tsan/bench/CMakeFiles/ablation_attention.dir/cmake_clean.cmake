file(REMOVE_RECURSE
  "CMakeFiles/ablation_attention.dir/ablation_attention.cpp.o"
  "CMakeFiles/ablation_attention.dir/ablation_attention.cpp.o.d"
  "ablation_attention"
  "ablation_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
