# Empty dependencies file for ablation_attention.
# This may be replaced when dependencies are built.
