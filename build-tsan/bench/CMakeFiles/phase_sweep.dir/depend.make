# Empty dependencies file for phase_sweep.
# This may be replaced when dependencies are built.
