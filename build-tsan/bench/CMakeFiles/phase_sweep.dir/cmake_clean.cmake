file(REMOVE_RECURSE
  "CMakeFiles/phase_sweep.dir/phase_sweep.cpp.o"
  "CMakeFiles/phase_sweep.dir/phase_sweep.cpp.o.d"
  "phase_sweep"
  "phase_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
