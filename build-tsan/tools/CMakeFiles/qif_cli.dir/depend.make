# Empty dependencies file for qif_cli.
# This may be replaced when dependencies are built.
