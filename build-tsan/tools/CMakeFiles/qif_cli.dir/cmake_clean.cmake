file(REMOVE_RECURSE
  "CMakeFiles/qif_cli.dir/qif_cli.cpp.o"
  "CMakeFiles/qif_cli.dir/qif_cli.cpp.o.d"
  "qif"
  "qif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qif_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
